"""An asynchronous message-passing network with crash faults.

The system of Section 2 item 3: ``n`` processes, reliable point-to-point
channels with unbounded (but finite) delays, at most ``f`` crash failures.
Delivery order is controlled by a :class:`DelayModel`; the default draws
random per-message latencies, and :class:`AdversarialDelays` lets tests pin
worst-case schedules.  Channels are optionally FIFO (per ordered pair), which
the full-information reconstruction of item 3 relies on.

Nodes are callback objects (:class:`Node`): the network calls
``on_message(src, payload)`` on delivery and ``on_start()`` at time zero.
A crashed node neither sends nor receives from its crash time onward.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro import obs
from repro.substrates.events.simulator import EventSimulator, SimulationError

__all__ = [
    "DelayModel",
    "UniformDelays",
    "AdversarialDelays",
    "Node",
    "NetworkStats",
    "AsyncNetwork",
]


class DelayModel(ABC):
    """Chooses a latency for each message."""

    @abstractmethod
    def latency(self, src: int, dst: int, send_time: float) -> float:
        """Return the in-flight time for a message ``src → dst``."""


class UniformDelays(DelayModel):
    """Latency drawn uniformly from ``[low, high]`` per message."""

    def __init__(self, rng: random.Random, low: float = 0.1, high: float = 10.0) -> None:
        if not 0 < low <= high:
            raise ValueError(f"need 0 < low ≤ high, got {low}, {high}")
        self.rng = rng
        self.low = low
        self.high = high

    def latency(self, src: int, dst: int, send_time: float) -> float:
        return self.rng.uniform(self.low, self.high)


class AdversarialDelays(DelayModel):
    """Per-link latencies from a table, with a default for unlisted links.

    ``table[(src, dst)]`` fixes a link's latency — tests use this to build
    the slow-process / fast-process schedules that make asynchronous
    executions interesting.
    """

    def __init__(
        self,
        table: dict[tuple[int, int], float] | None = None,
        default: float = 1.0,
    ) -> None:
        self.table = dict(table or {})
        self.default = default

    def latency(self, src: int, dst: int, send_time: float) -> float:
        return self.table.get((src, dst), self.default)


class Node(ABC):
    """A process attached to an :class:`AsyncNetwork`."""

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.network: "AsyncNetwork | None" = None

    def attach(self, network: "AsyncNetwork") -> None:
        self.network = network

    def send(self, dst: int, payload: Any) -> None:
        assert self.network is not None, "node not attached to a network"
        self.network.send(self.pid, dst, payload)

    def broadcast(self, payload: Any, *, include_self: bool = True) -> None:
        """Send ``payload`` to every process (self-delivery is immediate)."""
        assert self.network is not None, "node not attached to a network"
        for dst in range(self.network.n):
            if dst == self.pid and not include_self:
                continue
            self.network.send(self.pid, dst, payload)

    def on_start(self) -> None:
        """Called once at simulated time zero."""

    @abstractmethod
    def on_message(self, src: int, payload: Any) -> None:
        """Called on each delivery addressed to this node."""


@dataclass
class NetworkStats:
    """Counters the benchmarks report.

    Plain int fields (the delivery loop pays one add per count); the
    snapshot / merge / publish contract is the shared one from
    :mod:`repro.obs.metrics`, so these counters, :class:`ChaosStats` and
    the overlay node counters all export the same way.
    """

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped_crash: int = 0

    def snapshot(self) -> dict[str, int]:
        """Plain picklable counter snapshot (the shared obs contract)."""
        return obs.field_snapshot(self)

    def merge(self, other: "NetworkStats | dict[str, int]") -> None:
        """Add another run's counters (or their snapshot) into this one."""
        snapshot = (
            other.snapshot() if isinstance(other, NetworkStats) else other
        )
        obs.merge_field_snapshots(self, snapshot)

    def publish(self, metrics: "obs.Metrics", prefix: str = "network") -> None:
        """Export the counters as ``{prefix}.{field}`` metrics."""
        obs.publish_fields(metrics, prefix, self)


class AsyncNetwork:
    """Reliable asynchronous network over the event simulator.

    Args:
        nodes: the processes, indexed by pid.
        sim: the event simulator driving time.
        delays: latency model (defaults to :class:`UniformDelays` seeded 0).
        fifo: enforce per-channel FIFO delivery by clamping each message's
            delivery time to be no earlier than the channel's previous one.

    Crash faults: :meth:`crash` stops a node at a simulated time; messages
    sent by it strictly after that time are suppressed, and deliveries to it
    after that time are dropped.  Messages already in flight *from* it are
    still delivered — a crash loses the process, not the network.
    """

    def __init__(
        self,
        nodes: list[Node],
        sim: EventSimulator,
        *,
        delays: DelayModel | None = None,
        fifo: bool = True,
    ) -> None:
        self.nodes = nodes
        self.n = len(nodes)
        self.sim = sim
        self.delays = delays or UniformDelays(random.Random(0))
        self.fifo = fifo
        self.stats = NetworkStats()
        # Optional duck-typed message observer (see repro.cc.trace):
        # on_send(src, dst, payload, time) fires for every accepted send,
        # on_deliver(src, dst, payload, time) for every delivery.  None by
        # default — recording costs nothing unless a recorder is attached.
        self.observer: Any = None
        self.crashed_at: dict[int, float] = {}
        self._last_delivery: dict[tuple[int, int], float] = {}
        for node in nodes:
            node.attach(self)

    # ---------------------------------------------------------------- faults

    def crash(self, pid: int, at_time: float | None = None) -> None:
        """Crash ``pid`` at ``at_time`` (default: now).  Idempotent-ish:
        only the earliest crash time is kept.

        Once the simulation has started delivering events, ``at_time`` must
        not lie in the past: a retroactive crash could contradict messages
        already delivered on behalf of the "crashed" process.
        """
        time = self.sim.now if at_time is None else at_time
        if self.sim.events_processed > 0 and time < self.sim.now:
            raise SimulationError(
                f"cannot crash process {pid} retroactively at t={time} "
                f"(simulation has already reached t={self.sim.now})"
            )
        if pid in self.crashed_at:
            self.crashed_at[pid] = min(self.crashed_at[pid], time)
        else:
            self.crashed_at[pid] = time

    def is_crashed(self, pid: int, at_time: float | None = None) -> bool:
        time = self.sim.now if at_time is None else at_time
        return pid in self.crashed_at and time > self.crashed_at[pid]

    @property
    def correct(self) -> frozenset[int]:
        """Processes that never crash in this execution."""
        return frozenset(range(self.n)) - frozenset(self.crashed_at)

    # ------------------------------------------------------------- messaging

    def send(self, src: int, dst: int, payload: Any) -> None:
        if self.is_crashed(src):
            self.stats.messages_dropped_crash += 1
            return
        self.stats.messages_sent += 1
        if self.observer is not None:
            self.observer.on_send(src, dst, payload, self.sim.now)
        if src == dst:
            # Self-delivery is immediate: a process always "hears" itself.
            self._deliver(src, dst, payload)
            return
        latency = self.delays.latency(src, dst, self.sim.now)
        delivery_time = self.sim.now + latency
        if self.fifo:
            floor = self._last_delivery.get((src, dst), 0.0)
            delivery_time = max(delivery_time, floor + 1e-9)
            self._last_delivery[(src, dst)] = delivery_time
        self.sim.schedule_at(
            delivery_time, lambda: self._deliver(src, dst, payload)
        )

    def _deliver(self, src: int, dst: int, payload: Any) -> None:
        if self.is_crashed(dst):
            self.stats.messages_dropped_crash += 1
            return
        self.stats.messages_delivered += 1
        if self.observer is not None:
            self.observer.on_deliver(src, dst, payload, self.sim.now)
        self.nodes[dst].on_message(src, payload)

    # ------------------------------------------------------------------ run

    def start(self) -> None:
        """Invoke every (non-crashed-at-zero) node's ``on_start``."""
        for node in self.nodes:
            if not self.is_crashed(node.pid, 0.0):
                self.sim.schedule(0.0, node.on_start)

    def run(self, *, max_events: int | None = 1_000_000) -> int:
        """Start all nodes and run the simulation to quiescence.

        Returns the number of events processed; check :attr:`exhausted`
        afterwards to tell quiescence from a truncated run.
        """
        self.start()
        return self.sim.run(max_events=max_events)

    @property
    def exhausted(self) -> bool:
        """True when the last ``run`` hit ``max_events`` before quiescence."""
        return self.sim.exhausted
