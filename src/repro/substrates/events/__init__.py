"""Discrete-event simulation kernel underlying all asynchronous substrates."""

from repro.substrates.events.simulator import (
    BudgetExhausted,
    EventHandle,
    EventSimulator,
    SimulationError,
)

__all__ = ["EventSimulator", "EventHandle", "SimulationError", "BudgetExhausted"]
