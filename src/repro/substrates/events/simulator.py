"""A minimal discrete-event simulation kernel.

Every asynchronous substrate (message passing, the ABD emulation, the
semi-synchronous model) runs on this kernel: events are ``(time, seq,
callback)`` triples in a heap; ``run`` pops them in order.  Determinism is
total — ties in time break by schedule order (``seq``), and all randomness
lives in the callers' explicit RNGs — so a seed reproduces an execution
exactly.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["EventSimulator", "EventHandle", "SimulationError", "BudgetExhausted"]


class SimulationError(RuntimeError):
    """The simulation was driven incorrectly (e.g. scheduling in the past)."""


class BudgetExhausted(SimulationError):
    """``run`` stopped on ``max_events`` with work still queued.

    Raised by callers (not by :meth:`EventSimulator.run` itself) that must
    not let a truncated execution masquerade as a quiescent one.
    """


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


@dataclass(frozen=True)
class EventHandle:
    """Returned by :meth:`EventSimulator.schedule`; allows cancellation."""

    _event: _Event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class EventSimulator:
    """Single-threaded event loop with simulated time.

    Typical use::

        sim = EventSimulator()
        sim.schedule(1.5, lambda: deliver(msg))
        sim.run()

    ``run`` executes until the queue drains (or a limit is hit) — quiescence
    is the natural termination notion for the protocols simulated here.
    """

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._seq = itertools.count()
        self.now: float = 0.0
        self.events_processed: int = 0
        self.exhausted: bool = False

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = _Event(self.now + delay, next(self._seq), callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        return self.schedule(time - self.now, callback)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a pending event (no-op if already run or cancelled)."""
        handle._event.cancelled = True

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)

    def run(
        self,
        *,
        until: float | None = None,
        max_events: int | None = None,
    ) -> int:
        """Process events in time order; return how many were processed.

        Stops when the queue is empty, simulated time would pass ``until``,
        or ``max_events`` have been processed — whichever comes first.
        ``max_events`` is the guard rail against non-quiescent protocols;
        when it fires with runnable events still queued, :attr:`exhausted`
        is set so callers can distinguish truncation from quiescence.
        """
        processed = 0
        self.exhausted = False
        while self._queue:
            if max_events is not None and processed >= max_events:
                self.exhausted = any(not e.cancelled for e in self._queue)
                break
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and event.time > until:
                break
            heapq.heappop(self._queue)
            self.now = event.time
            event.callback()
            processed += 1
            self.events_processed += 1
        if until is not None and self.now < until and not self._queue:
            self.now = until
        return processed

    def step(self) -> bool:
        """Process exactly one event; return False if the queue was empty."""
        processed = self.run(max_events=1) == 1
        # Stepping one event is deliberate, not a truncated run.
        self.exhausted = False
        return processed
