"""Lock-step synchronous message passing (Section 2, items 1–2).

Computation proceeds in global rounds: every alive process broadcasts, the
fault injector deletes some deliveries, and by the round's end each process
has received the messages of all alive, non-omitting senders.  The engine
then *derives* the suspicion sets — ``D(i, r)`` is exactly the set of
processes from which ``i`` failed to receive a round-``r`` message — which
is the paper's construction showing the synchronous system implements its
RRFD counterpart (items 1 and 2).

The derived suspicion history is exposed on the result so tests can verify
it satisfies :class:`repro.core.predicates.SendOmissionSync` /
:class:`repro.core.predicates.CrashSync`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.algorithm import Protocol, RoundProcess
from repro.core.types import DHistory, RoundView
from repro.substrates.sync.faults import FaultInjector, NoFaults

__all__ = ["SyncResult", "SynchronousEngine", "run_synchronous"]


@dataclass
class SyncResult:
    """Outcome of a synchronous execution."""

    n: int
    inputs: tuple[Any, ...]
    processes: list[RoundProcess]
    views: list[list[RoundView]]
    d_history: DHistory
    crashed_at: dict[int, int]
    rounds_run: int

    @property
    def decisions(self) -> list[Any]:
        return [proc.decision for proc in self.processes]

    @property
    def alive(self) -> frozenset[int]:
        return frozenset(range(self.n)) - frozenset(self.crashed_at)

    def decisions_of_alive(self) -> dict[int, Any]:
        return {pid: self.processes[pid].decision for pid in sorted(self.alive)}


class SynchronousEngine:
    """Run an emit/receive protocol on the synchronous substrate.

    Crashed processes stop emitting and receiving; their rows in the derived
    suspicion history are synthesised (everything-suspected-except-self) so
    the history stays a well-formed ``n``-row family — a crashed process's
    view is irrelevant to the model predicates, which quantify over alive
    processes (see the modelling note in :mod:`repro.core.predicates`).
    """

    def __init__(
        self,
        protocol: Protocol,
        inputs: Sequence[Any],
        injector: FaultInjector | None = None,
    ) -> None:
        self.n = len(inputs)
        self.inputs = tuple(inputs)
        self.injector = injector or NoFaults(self.n)
        if self.injector.n != self.n:
            raise ValueError(
                f"injector is for n={self.injector.n}, inputs give n={self.n}"
            )
        self.processes = protocol.spawn_all(self.inputs)
        self.views: list[list[RoundView]] = [[] for _ in range(self.n)]
        self.d_rounds: list[tuple[frozenset[int], ...]] = []
        self.crashed_at: dict[int, int] = {}
        self.rounds_run = 0

    @property
    def alive(self) -> frozenset[int]:
        return frozenset(range(self.n)) - frozenset(self.crashed_at)

    def step(self) -> None:
        """Execute one synchronous round."""
        r = self.rounds_run + 1
        alive_at_start = self.alive
        faults = self.injector.plan_round(r, alive_at_start)

        payloads: dict[int, Any] = {
            pid: self.processes[pid].emit(r) for pid in sorted(alive_at_start)
        }
        alive_rows: dict[int, frozenset[int]] = {}
        for pid in sorted(alive_at_start):
            received = {
                src: payload
                for src, payload in payloads.items()
                if (src, pid) not in faults.lost
            }
            suspected = frozenset(range(self.n)) - frozenset(received)
            alive_rows[pid] = suspected
            view = RoundView(
                pid=pid, round=r, messages=received, suspected=suspected, n=self.n
            )
            self.views[pid].append(view)
            self.processes[pid].absorb(view)

        # Crashed processes have no view; synthesise predicate-consistent
        # rows (suspect exactly what's known faulty, never yourself) so the
        # derived history remains a well-formed n-row family.
        prior: frozenset[int] = frozenset()
        for past_round in self.d_rounds:
            for row in past_round:
                prior |= row
        this_round_union: frozenset[int] = frozenset()
        for row in alive_rows.values():
            this_round_union |= row
        suspicions = tuple(
            alive_rows[pid]
            if pid in alive_rows
            else (prior | this_round_union) - {pid}
            for pid in range(self.n)
        )

        for pid in faults.crashes:
            self.crashed_at.setdefault(pid, r)
        self.d_rounds.append(suspicions)
        self.rounds_run = r

    def run(self, max_rounds: int, *, stop_when_alive_decided: bool = True) -> SyncResult:
        for _ in range(max_rounds):
            if stop_when_alive_decided and all(
                self.processes[pid].decided for pid in self.alive
            ):
                break
            self.step()
        return SyncResult(
            n=self.n,
            inputs=self.inputs,
            processes=self.processes,
            views=self.views,
            d_history=tuple(self.d_rounds),
            crashed_at=dict(self.crashed_at),
            rounds_run=self.rounds_run,
        )


def run_synchronous(
    protocol: Protocol,
    inputs: Sequence[Any],
    injector: FaultInjector | None = None,
    *,
    max_rounds: int,
    stop_when_alive_decided: bool = True,
) -> SyncResult:
    """One-shot convenience wrapper around :class:`SynchronousEngine`."""
    engine = SynchronousEngine(protocol, inputs, injector)
    return engine.run(max_rounds, stop_when_alive_decided=stop_when_alive_decided)
