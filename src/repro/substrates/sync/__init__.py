"""Synchronous message passing with crash/omission faults (items 1–2)."""

from repro.substrates.sync.engine import SyncResult, SynchronousEngine, run_synchronous
from repro.substrates.sync.faults import (
    CrashScheduleInjector,
    FaultInjector,
    NoFaults,
    OmissionInjector,
    RandomCrashInjector,
    RoundFaults,
)

__all__ = [
    "SyncResult",
    "SynchronousEngine",
    "run_synchronous",
    "CrashScheduleInjector",
    "FaultInjector",
    "NoFaults",
    "OmissionInjector",
    "RandomCrashInjector",
    "RoundFaults",
]
