"""Fault injectors for the synchronous substrate.

A synchronous round delivers every alive process's message to everyone —
unless a fault interferes.  Two classic benign fault types (Section 2,
items 1–2):

- *crash*: a process stops mid-round; an adversary-chosen subset of
  recipients misses its last message, after which it sends nothing;
- *send-omission*: a faulty process stays alive but intermittently fails to
  send to adversary-chosen targets; at most ``f`` processes are faulty over
  the whole run.

An injector plans, per round, which ``(src, dst)`` deliveries are lost and
which processes crash.  The engine derives ``D(i, r)`` from the resulting
missed receptions — this is the paper's "System N implements A" direction.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

__all__ = [
    "RoundFaults",
    "FaultInjector",
    "NoFaults",
    "CrashScheduleInjector",
    "RandomCrashInjector",
    "OmissionInjector",
]


@dataclass(frozen=True)
class RoundFaults:
    """One round's planned faults: lost deliveries and new crashes."""

    lost: frozenset[tuple[int, int]] = frozenset()
    crashes: frozenset[int] = frozenset()


class FaultInjector(ABC):
    """Plans faults round by round, respecting a global budget."""

    def __init__(self, n: int, f: int) -> None:
        if not 0 <= f < n:
            raise ValueError(f"need 0 ≤ f < n, got f={f}, n={n}")
        self.n = n
        self.f = f

    @abstractmethod
    def plan_round(self, round_number: int, alive: frozenset[int]) -> RoundFaults:
        """Faults for ``round_number``; ``alive`` excludes earlier crashes."""


class NoFaults(FaultInjector):
    """The failure-free injector."""

    def __init__(self, n: int) -> None:
        super().__init__(n, 0)

    def plan_round(self, round_number: int, alive: frozenset[int]) -> RoundFaults:
        return RoundFaults()


class CrashScheduleInjector(FaultInjector):
    """Crash processes per an explicit schedule.

    ``schedule[pid] = r`` crashes ``pid`` during round ``r``.
    ``missed_by[pid]`` fixes who misses its round-``r`` message (default:
    everyone but itself — the worst case); pass ``rng`` instead for a random
    subset per crash.
    """

    def __init__(
        self,
        n: int,
        f: int,
        schedule: dict[int, int],
        *,
        missed_by: dict[int, frozenset[int]] | None = None,
        rng: random.Random | None = None,
    ) -> None:
        super().__init__(n, f)
        if len(schedule) > f:
            raise ValueError(
                f"{len(schedule)} crashes scheduled, budget is f={f}"
            )
        self.schedule = dict(schedule)
        self.missed_by = dict(missed_by or {})
        self.rng = rng

    def plan_round(self, round_number: int, alive: frozenset[int]) -> RoundFaults:
        crashing = frozenset(
            pid
            for pid, r in self.schedule.items()
            if r == round_number and pid in alive
        )
        lost: set[tuple[int, int]] = set()
        for pid in crashing:
            if pid in self.missed_by:
                misses = self.missed_by[pid]
            elif self.rng is not None:
                misses = frozenset(
                    dst
                    for dst in range(self.n)
                    if dst != pid and self.rng.random() < 0.5
                )
            else:
                misses = frozenset(range(self.n)) - {pid}
            lost.update((pid, dst) for dst in misses if dst != pid)
        return RoundFaults(lost=frozenset(lost), crashes=crashing)


class RandomCrashInjector(FaultInjector):
    """Crash up to ``f`` random processes at random rounds.

    ``crash_prob`` is the per-round, per-alive-process crash probability
    while budget remains.  The worst-case pattern for round lower bounds
    (one crash per round) is better expressed with
    :class:`CrashScheduleInjector`.
    """

    def __init__(
        self, n: int, f: int, rng: random.Random, *, crash_prob: float = 0.2
    ) -> None:
        super().__init__(n, f)
        self.rng = rng
        self.crash_prob = crash_prob
        self._crashed: set[int] = set()

    def plan_round(self, round_number: int, alive: frozenset[int]) -> RoundFaults:
        lost: set[tuple[int, int]] = set()
        crashing: set[int] = set()
        for pid in sorted(alive):
            if len(self._crashed) + len(crashing) >= self.f:
                break
            if self.rng.random() < self.crash_prob:
                crashing.add(pid)
                for dst in range(self.n):
                    if dst != pid and self.rng.random() < 0.5:
                        lost.add((pid, dst))
        self._crashed.update(crashing)
        return RoundFaults(lost=frozenset(lost), crashes=frozenset(crashing))


class OmissionInjector(FaultInjector):
    """Send-omission faults: ≤ f fixed faulty processes drop sends at random.

    Faulty processes never crash; each round, each of their outgoing
    messages (except to themselves) is dropped with ``drop_prob``.
    """

    def __init__(
        self,
        n: int,
        f: int,
        faulty: frozenset[int] | set[int],
        rng: random.Random,
        *,
        drop_prob: float = 0.4,
    ) -> None:
        super().__init__(n, f)
        faulty = frozenset(faulty)
        if len(faulty) > f:
            raise ValueError(f"|faulty|={len(faulty)} exceeds budget f={f}")
        if any(not 0 <= pid < n for pid in faulty):
            raise ValueError(f"faulty ids out of range: {sorted(faulty)}")
        self.faulty = faulty
        self.rng = rng
        self.drop_prob = drop_prob

    def plan_round(self, round_number: int, alive: frozenset[int]) -> RoundFaults:
        lost = frozenset(
            (src, dst)
            for src in sorted(self.faulty)
            for dst in range(self.n)
            if dst != src and self.rng.random() < self.drop_prob
        )
        return RoundFaults(lost=lost, crashes=frozenset())
