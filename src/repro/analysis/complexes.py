"""Protocol complexes of RRFD rounds — the topology behind the paper.

The paper's lineage ([4]; Herlihy–Rajsbaum–Tuttle in the same proceedings)
views a round-based model through its *protocol complex*: a simplex per
reachable round outcome, a vertex per (process, local view).  The RRFD
framing makes this concrete: a one-round outcome is an allowed suspicion
family ``(D(0,r), ..., D(n-1,r))``, and process ``i``'s view is the set it
heard from, ``S − D(i, r)`` (under full information with distinct inputs,
the heard-set *is* the view).

For tiny ``n`` we enumerate the complex exactly and compute the structural
facts the paper leans on implicitly:

- **connectivity**: if the one-round complex is connected and contains the
  failure-free simplex for every input corner, one-round consensus is
  impossible in the model (decisions are constant on components; validity
  pins the corners to different values).  Conversely the semi-synchronous
  equality model's complex *disconnects* — which is exactly why Section 5
  gets one-round consensus.
- **facet/vertex counts and Euler characteristic** — the footprint of the
  "iterated" structure of [4].

Only the *paper-relevant* fragments of combinatorial topology are
implemented; this is a measurement tool, not a topology library.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

from repro.core.predicate import Predicate
from repro.core.types import DRound
from repro.util.sets import all_subset_families

__all__ = ["ProtocolComplex", "one_round_complex", "iterated_complex", "consensus_disconnection"]

Vertex = tuple[int, frozenset[int]]  # (pid, heard set)


@dataclass
class ProtocolComplex:
    """A simplicial complex given by its facets (maximal simplexes)."""

    n: int
    facets: list[frozenset[Vertex]]

    @property
    def vertices(self) -> frozenset[Vertex]:
        result: set[Vertex] = set()
        for facet in self.facets:
            result.update(facet)
        return frozenset(result)

    @property
    def facet_count(self) -> int:
        return len(self.facets)

    def faces(self) -> set[frozenset[Vertex]]:
        """Every non-empty face (subset of some facet)."""
        result: set[frozenset[Vertex]] = set()
        for facet in self.facets:
            members = sorted(facet)
            for size in range(1, len(members) + 1):
                for combo in itertools.combinations(members, size):
                    result.add(frozenset(combo))
        return result

    def euler_characteristic(self) -> int:
        """``Σ (−1)^dim`` over all faces (dim = |face| − 1)."""
        total = 0
        for face in self.faces():
            total += (-1) ** (len(face) - 1)
        return total

    def components(self) -> list[frozenset[Vertex]]:
        """Connected components of the facet-sharing graph, as vertex sets."""
        parent: dict[Vertex, Vertex] = {v: v for v in self.vertices}

        def find(v: Vertex) -> Vertex:
            while parent[v] != v:
                parent[v] = parent[parent[v]]
                v = parent[v]
            return v

        for facet in self.facets:
            members = sorted(facet)
            for other in members[1:]:
                ra, rb = find(members[0]), find(other)
                if ra != rb:
                    parent[ra] = rb
        groups: dict[Vertex, set[Vertex]] = {}
        for v in self.vertices:
            groups.setdefault(find(v), set()).add(v)
        return [frozenset(group) for group in groups.values()]

    def is_connected(self) -> bool:
        return len(self.components()) <= 1


def one_round_complex(
    predicate: Predicate, *, max_d_size: int | None = None
) -> ProtocolComplex:
    """Enumerate the one-round protocol complex of a model.

    One facet per allowed suspicion family; vertex ``(i, S − D(i))``.
    Exhaustive: keep ``n ≤ 4`` (or bound ``max_d_size``).
    """
    n = predicate.n
    everyone = frozenset(range(n))
    facets: set[frozenset[Vertex]] = set()
    for d_round in all_subset_families(n, max_size=max_d_size):
        if not predicate.allows((d_round,)):
            continue
        facets.add(
            frozenset((pid, everyone - d_round[pid]) for pid in range(n))
        )
    return ProtocolComplex(n=n, facets=sorted(facets, key=sorted))


def iterated_complex(
    predicate: Predicate,
    rounds: int,
    *,
    max_d_size: int | None = None,
) -> ProtocolComplex:
    """The ``rounds``-fold iterated protocol complex (full information).

    The paper's reference [4] coined *iterated* models because "the
    topological structure induced by round-based models is an iteration of
    the structure induced by a single round".  Here a vertex is
    ``(pid, view tree)`` where the round-``r`` view tree nests the
    round-``(r−1)`` trees of everyone heard; one facet per allowed
    ``rounds``-round suspicion history.

    Exhaustive over histories: keep ``n ≤ 3`` and ``rounds ≤ 2`` (or bound
    ``max_d_size``).
    """
    n = predicate.n
    everyone = frozenset(range(n))
    facets: set[frozenset[Vertex]] = set()

    def final_views(history: tuple[DRound, ...]) -> tuple[Any, ...]:
        views: list[Any] = list(range(n))  # round-0 "views" are the inputs
        for d_round in history:
            views = [
                (
                    views[pid],
                    tuple(
                        (j, views[j])
                        for j in sorted(everyone - d_round[pid])
                    ),
                )
                for pid in range(n)
            ]
        return tuple(views)

    def extend(history: tuple[DRound, ...]) -> None:
        if len(history) == rounds:
            views = final_views(history)
            facets.add(frozenset((pid, views[pid]) for pid in range(n)))
            return
        for d_round in all_subset_families(n, max_size=max_d_size):
            candidate = history + (d_round,)
            if predicate.allows(candidate):
                extend(candidate)

    extend(())
    return ProtocolComplex(n=n, facets=sorted(facets, key=sorted))


def consensus_disconnection(
    predicate: Predicate, *, max_d_size: int | None = None
) -> dict[str, object]:
    """The connectivity facts relevant to one-round consensus.

    Returns a summary dict: ``connected`` (bool), ``components`` (count),
    ``facets``, ``vertices``, ``euler``.  A *connected* complex containing
    the failure-free facet means one-round consensus is impossible in the
    model (for distinct inputs); a disconnected one leaves the door open —
    and for the equality models each component is a decision class.
    """
    complex_ = one_round_complex(predicate, max_d_size=max_d_size)
    return {
        "connected": complex_.is_connected(),
        "components": len(complex_.components()),
        "facets": complex_.facet_count,
        "vertices": len(complex_.vertices),
        "euler": complex_.euler_characteristic(),
    }
