"""Knowledge propagation under the antisymmetric shared-memory predicate (E8).

Section 2 item 4 discusses an alternative to predicate (4): misses are
antisymmetric, ``p_j ∈ D(i,r) ⇒ p_i ∉ D(j,r)``.  This does *not* force
someone to be heard by all in a round (a "does-not-know" cycle
``p_1 → p_2 → ... → p_n → p_1`` is possible), but a cycle passes information
backwards along itself every round, so a does-not-know cycle surviving ``r``
rounds must have length ``> r``.  Consequently after ``n`` rounds no cycle
survives — some process is known to all.  The paper *conjectures two rounds
suffice*; :func:`two_round_conjecture_counterexample` searches for
counterexamples so the experiment can report on the conjecture empirically.

"Knows" here is input-level full information: ``K_i(0) = {i}`` and
``K_i(r) = K_i(r−1) ∪ ⋃ { K_m(r−1) : m ∉ D(i, r) }``.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator

from repro.core.predicates import SharedMemoryAntisymmetric
from repro.core.types import DHistory, DRound

__all__ = [
    "propagate_knowledge",
    "rounds_until_some_known_by_all",
    "all_antisymmetric_rounds",
    "two_round_conjecture_counterexample",
    "two_round_conjecture_exhaustive_symmetric",
]


def propagate_knowledge(n: int, history: DHistory) -> list[list[frozenset[int]]]:
    """Per-round knowledge sets: result[r][i] = inputs known to i after r+1 rounds."""
    knowledge = [frozenset([i]) for i in range(n)]
    evolution: list[list[frozenset[int]]] = []
    for d_round in history:
        knowledge = [
            knowledge[i].union(
                *(knowledge[m] for m in range(n) if m not in d_round[i])
            )
            for i in range(n)
        ]
        evolution.append(list(knowledge))
    return evolution


def rounds_until_some_known_by_all(n: int, history: DHistory) -> int | None:
    """First round count after which some process is known by everyone."""
    for r, knowledge in enumerate(propagate_knowledge(n, history), start=1):
        common = frozenset(range(n)).intersection(*knowledge) if knowledge else frozenset()
        known_to_all = knowledge[0].intersection(*knowledge[1:]) if n > 1 else knowledge[0]
        if known_to_all:
            return r
    return None


def all_antisymmetric_rounds(n: int, f: int) -> Iterator[DRound]:
    """Every antisymmetric round with per-process miss bound ``f``.

    The miss relation is a directed graph with no 2-cycles and out-degree
    ≤ f (self-misses excluded: a self-miss is antisymmetry-irrelevant but we
    keep ``i ∉ D(i)`` here since the construction's processes always read
    their own cell).  Exponential in ``n²`` — keep ``n ≤ 4``.
    """
    pairs = [(i, j) for i in range(n) for j in range(n) if i != j]
    for bits in itertools.product([False, True], repeat=len(pairs)):
        suspicions = [set() for _ in range(n)]
        ok = True
        for (i, j), miss in zip(pairs, bits):
            if miss:
                if i in suspicions[j]:
                    ok = False
                    break
                suspicions[i].add(j)
                if len(suspicions[i]) > f:
                    ok = False
                    break
        if ok:
            yield tuple(frozenset(s) for s in suspicions)


def two_round_conjecture_counterexample(
    n: int,
    f: int,
    *,
    exhaustive: bool = False,
    samples: int = 10_000,
    rng: random.Random | None = None,
) -> DHistory | None:
    """Search for a 2-round antisymmetric history where nobody is known by all.

    Returns the counterexample history, or ``None`` if none was found
    (exhaustively for small ``n``, or within ``samples`` random draws).
    A ``None`` from ``exhaustive=True`` *proves* the conjecture for that
    ``(n, f)``.
    """
    predicate = SharedMemoryAntisymmetric(n, f)
    if exhaustive:
        rounds = list(all_antisymmetric_rounds(n, f))
        for first in rounds:
            for second in rounds:
                history = (first, second)
                if rounds_until_some_known_by_all(n, history) is None:
                    return history
        return None
    rng = rng or random.Random(0)
    for _ in range(samples):
        history: DHistory = ()
        for _ in range(2):
            history = history + (predicate.sample_round(rng, history),)
        if rounds_until_some_known_by_all(n, history) is None:
            return history
    return None


def two_round_conjecture_exhaustive_symmetric(n: int) -> DHistory | None:
    """Exhaustively decide the two-round conjecture for ``n`` processes.

    Feasible well past :func:`two_round_conjecture_counterexample`'s naive
    enumeration thanks to two exact reductions:

    - *pruning*: a round in which some process is heard by everyone makes
      that process's (round-1) knowledge — hence its input — known to all,
      so both rounds of a counterexample must have ``⋃ᵢD(i,r) = S``;
    - *symmetry*: relabelling processes maps counterexamples to
      counterexamples, so only one representative per relabelling orbit of
      the first round needs checking (the second round still ranges over
      all candidates).

    Knowledge sets are bitmasks; n = 5 (~59k antisymmetric rounds, ~16k
    candidates, ~141 orbit representatives) finishes in well under a
    minute.  Returns a counterexample history or ``None`` (a proof).
    """
    import itertools

    pairs = [(i, j) for i in range(n) for j in range(n) if i < j]
    full = (1 << n) - 1

    # Enumerate antisymmetric rounds as per-process heard-bitmasks, keeping
    # only candidates where nobody is heard by all (union of misses = S).
    candidates: list[tuple[frozenset[int], ...]] = []
    heard_masks: list[list[int]] = []
    for assign in itertools.product(range(3), repeat=len(pairs)):
        suspicions = [set() for _ in range(n)]
        for (i, j), a in zip(pairs, assign):
            if a == 1:
                suspicions[i].add(j)
            elif a == 2:
                suspicions[j].add(i)
        union = set()
        for s in suspicions:
            union |= s
        if len(union) != n:
            continue
        candidates.append(tuple(frozenset(s) for s in suspicions))
        heard_masks.append(
            [full & ~sum(1 << j for j in suspicions[i]) | (1 << i)
             for i in range(n)]
        )
    # NOTE: a process always "knows" itself; include self in heard for the
    # knowledge recurrence (self-misses don't erase self-knowledge).

    def canonical(d_round: tuple[frozenset[int], ...]) -> tuple:
        best = None
        for perm in itertools.permutations(range(n)):
            relabelled = tuple(
                frozenset(perm[j] for j in d_round[perm.index(i)])
                for i in range(n)
            )
            key = tuple(tuple(sorted(s)) for s in relabelled)
            if best is None or key < best:
                best = key
        return best

    representatives: dict[tuple, int] = {}
    for idx, d_round in enumerate(candidates):
        key = canonical(d_round)
        if key not in representatives:
            representatives[key] = idx

    for idx in representatives.values():
        heard1 = heard_masks[idx]
        # knowledge after round 1: K1[i] = ⋃ heard (inputs), self included
        k1 = list(heard1)
        for heard2 in heard_masks:
            inter = full
            for i in range(n):
                k2 = 0
                mask = heard2[i]
                for m in range(n):
                    if mask >> m & 1:
                        k2 |= k1[m]
                k2 |= k1[i]
                inter &= k2
                if not inter:
                    break
            if not inter:
                # counterexample: reconstruct the history
                second = candidates[heard_masks.index(heard2)]
                return (candidates[idx], second)
    return None
