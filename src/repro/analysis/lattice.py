"""The submodel lattice of the paper's model catalog (experiment E9).

Section 2 relates its models by the submodel relation ``P_A ⇒ P_B``.  This
module instantiates the catalog at concrete parameters, checks every ordered
pair (exhaustively where feasible, by sampling otherwise), and renders the
result as the lattice the paper describes:

- crash ⊆ send-omission (explicit in item 2);
- atomic snapshot ⊆ SWMR shared memory ⊆ async message passing (items 3–5);
- antisymmetric shared memory ⊆ async MP, incomparable with SWMR (item 4);
- async MP(f) ⊆ mixed-resilience B(t, f), strictly (item 3);
- send-omission(n−1) ⊆ ◇S, strictly (item 6);
- snapshot with ≤ k−1 failures ⊆ k-set detector (Corollary 3.2);
- semi-sync equality = k-set detector with k = 1 (Section 5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.predicate import Predicate
from repro.core.predicates import (
    AsyncMessagePassing,
    AtomicSnapshot,
    CrashSync,
    EventuallyStrong,
    KSetDetector,
    MixedResilience,
    SemiSyncEquality,
    SendOmissionSync,
    SharedMemoryAntisymmetric,
    SharedMemorySWMR,
)
from repro.core.submodel import SubmodelResult, check_submodel

__all__ = ["standard_catalog", "LatticeReport", "compute_lattice", "EXPECTED_EDGES"]


def standard_catalog(n: int, f: int, k: int, t: int) -> list[tuple[str, Predicate]]:
    """The paper's models instantiated at one parameter point."""
    return [
        ("crash", CrashSync(n, f)),
        ("omission", SendOmissionSync(n, f)),
        ("async-mp", AsyncMessagePassing(n, f)),
        ("mixed-B", MixedResilience(n, t, f)),
        ("swmr", SharedMemorySWMR(n, f)),
        ("antisym", SharedMemoryAntisymmetric(n, f)),
        ("snapshot", AtomicSnapshot(n, f)),
        ("diamond-S", EventuallyStrong(n)),
        (f"kset({k})", KSetDetector(n, k)),
        ("semisync-eq", SemiSyncEquality(n)),
    ]


# The paper's claimed submodel edges, as (submodel, supermodel) name pairs.
# With the canonical instantiation f = k − 1 (Corollary 3.2's "snapshot with
# ≤ k−1 failures" edge) and t > f, all of these must hold and none of their
# reverses may.  Used by tests and the E9 benchmark.
EXPECTED_EDGES = [
    ("crash", "omission"),
    ("snapshot", "async-mp"),
    ("swmr", "async-mp"),
    ("antisym", "async-mp"),
    ("async-mp", "mixed-B"),
    ("snapshot", "swmr"),
]


@dataclass
class LatticeReport:
    """All pairwise submodel checks over a catalog."""

    names: list[str]
    results: dict[tuple[str, str], SubmodelResult]

    def holds(self, a: str, b: str) -> bool | None:
        return self.results[(a, b)].holds

    def format(self) -> str:
        """ASCII matrix: row ⇒ column (Y/n/?), paper-style summary."""
        width = max(len(name) for name in self.names) + 1
        header = " " * width + " ".join(f"{name:>{width}}" for name in self.names)
        lines = [header]
        for a in self.names:
            cells = []
            for b in self.names:
                if a == b:
                    mark = "="
                else:
                    verdict = self.results[(a, b)].holds
                    mark = {True: "Y", False: "n", None: "?"}[verdict]
                cells.append(f"{mark:>{width}}")
            lines.append(f"{a:<{width}}" + " ".join(cells))
        return "\n".join(lines)


def compute_lattice(
    n: int,
    f: int,
    k: int,
    t: int,
    *,
    rounds: int = 2,
    samples: int = 400,
    seed: int = 0,
) -> LatticeReport:
    """Check every ordered pair of catalog models for submodel-hood.

    Exhaustive for small ``n`` (see :func:`repro.core.submodel.check_submodel`
    for the feasibility rule); sampled refutation otherwise.
    """
    catalog = standard_catalog(n, f, k, t)
    rng = random.Random(seed)
    results: dict[tuple[str, str], SubmodelResult] = {}
    for name_a, pred_a in catalog:
        for name_b, pred_b in catalog:
            if name_a == name_b:
                continue
            results[(name_a, name_b)] = check_submodel(
                pred_a,
                pred_b,
                rounds=rounds,
                samples=samples,
                rng=rng,
            )
    return LatticeReport(names=[name for name, _ in catalog], results=results)
