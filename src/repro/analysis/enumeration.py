"""Exhaustive enumeration of synchronous crash executions (tiny systems).

The lower bounds of Corollaries 4.2/4.4 say *no algorithm* solves k-set
agreement in ``⌊f/k⌋`` synchronous rounds.  For tiny systems we can verify
this by brute force: a deterministic ``r``-round algorithm is a function
from full-information views to decisions, so enumerating

- every input vector over a ``(k+1)``-value domain, and
- every crash pattern (≤ f crashes, each with an adversary-chosen set of
  recipients that miss the final message),

yields every reachable final view and every co-occurrence constraint among
them.  :mod:`repro.analysis.solvability` then decides whether *any* decision
map satisfies the task — a finite certificate of (un)solvability.

Views are canonicalised to hashable trees so identical knowledge states in
different executions collapse to one decision variable (that collapse *is*
the content of the argument: an algorithm cannot distinguish them).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.core.algorithm import FullInformationProcess, make_protocol
from repro.substrates.sync.engine import SynchronousEngine
from repro.substrates.sync.faults import CrashScheduleInjector

__all__ = [
    "CrashPattern",
    "Execution",
    "enumerate_crash_patterns",
    "enumerate_executions",
    "freeze_value",
]


@dataclass(frozen=True)
class CrashPattern:
    """A complete adversary strategy for a bounded synchronous execution.

    ``crash_round[pid]`` says when ``pid`` crashes (absent = never);
    ``missed_by[pid]`` is the set of recipients that miss its final message.
    """

    crash_round: tuple[tuple[int, int], ...]  # sorted (pid, round) pairs
    missed_by: tuple[tuple[int, frozenset[int]], ...]  # sorted (pid, misses)

    @property
    def crashed(self) -> frozenset[int]:
        return frozenset(pid for pid, _ in self.crash_round)


def enumerate_crash_patterns(
    n: int, f: int, rounds: int
) -> Iterator[CrashPattern]:
    """Yield every crash pattern with ≤ f crashes over ``rounds`` rounds.

    For each subset of ≤ f crashers, each assignment of crash rounds, and
    each choice of who misses each crasher's last partial broadcast.  The
    count grows as ``Σ C(n,c)·r^c·(2^{n-1})^c`` — keep ``n ≤ 4``.
    """
    processes = range(n)
    for count in range(f + 1):
        for crashers in itertools.combinations(processes, count):
            for when in itertools.product(range(1, rounds + 1), repeat=count):
                miss_choices = [
                    [
                        frozenset(sub)
                        for size in range(n)
                        for sub in itertools.combinations(
                            [q for q in processes if q != pid], size
                        )
                    ]
                    for pid in crashers
                ]
                for misses in itertools.product(*miss_choices):
                    yield CrashPattern(
                        crash_round=tuple(sorted(zip(crashers, when))),
                        missed_by=tuple(sorted(zip(crashers, misses))),
                    )


def freeze_value(value: Any) -> Any:
    """Canonicalise a full-information payload/view into a hashable tree."""
    if isinstance(value, dict):
        return tuple(sorted((k, freeze_value(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(freeze_value(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(value))
    return value


@dataclass(frozen=True)
class Execution:
    """One enumerated execution: its inputs and the deciders' final views."""

    inputs: tuple[Any, ...]
    pattern: CrashPattern
    # (pid, frozen_view_history) per process alive at the end — the decision
    # variables of this execution.
    alive_views: tuple[tuple[int, Any], ...]

    @property
    def input_set(self) -> frozenset[Any]:
        return frozenset(self.inputs)


def run_pattern(
    inputs: Sequence[Any], pattern: CrashPattern, rounds: int, f: int
) -> Execution:
    """Execute the full-information protocol under one crash pattern."""
    n = len(inputs)
    injector = CrashScheduleInjector(
        n,
        f,
        dict(pattern.crash_round),
        missed_by=dict(pattern.missed_by),
    )
    engine = SynchronousEngine(
        make_protocol(FullInformationProcess), inputs, injector
    )
    result = engine.run(rounds, stop_when_alive_decided=False)
    alive = sorted(result.alive)
    views = []
    for pid in alive:
        history = tuple(
            (
                freeze_value(dict(view.messages)),
                freeze_value(view.suspected),
            )
            for view in result.views[pid]
        )
        views.append((pid, (inputs[pid], history)))
    return Execution(
        inputs=tuple(inputs), pattern=pattern, alive_views=tuple(views)
    )


def enumerate_executions(
    n: int,
    f: int,
    rounds: int,
    *,
    input_domain: Sequence[Any],
    input_vectors: Sequence[Sequence[Any]] | None = None,
) -> list[Execution]:
    """All executions over the input vectors × crash patterns.

    ``input_vectors`` defaults to the full product ``input_domain^n``.
    """
    if input_vectors is None:
        input_vectors = list(itertools.product(input_domain, repeat=n))
    patterns = list(enumerate_crash_patterns(n, f, rounds))
    return [
        run_pattern(vector, pattern, rounds, f)
        for vector in input_vectors
        for pattern in patterns
    ]
