"""Deciding task solvability from enumerated executions (Corollaries 4.2/4.4).

Given the executions of :mod:`repro.analysis.enumeration`, a deterministic
algorithm is exactly a *decision map* from (pid, final view) keys to values.
The task constrains the map:

- **validity**: a view's value must be an input of *every* execution the
  view occurs in (the algorithm cannot tell them apart);
- **k-agreement**: within each execution, the deciders' values span at most
  ``k`` distinct values.

:func:`kset_solvable` searches for such a map by backtracking with
most-constrained-first ordering; :func:`consensus_solvable` specialises
``k = 1`` to a connected-components argument (exact and fast): views linked
by co-occurrence must decide alike, so consensus is solvable iff every
component still has an allowed value.

These checkers, combined with FloodMin's matching upper bound, give the
finite certificates for experiment E5: k-set agreement is unsolvable in
``⌊f/k⌋`` synchronous rounds and solvable in ``⌊f/k⌋ + 1``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Hashable, Sequence

from repro.analysis.enumeration import Execution

__all__ = [
    "SolvabilityResult",
    "build_constraints",
    "consensus_solvable",
    "kset_solvable",
]

ViewKey = tuple[int, Hashable]


@dataclass
class SolvabilityResult:
    """Outcome of a solvability search."""

    solvable: bool
    k: int
    views: int
    executions: int
    assignment: dict[ViewKey, Any] | None = None

    def __str__(self) -> str:
        verdict = "SOLVABLE" if self.solvable else "UNSOLVABLE"
        return (
            f"{self.k}-set agreement over {self.executions} executions / "
            f"{self.views} views: {verdict}"
        )


def build_constraints(
    executions: Sequence[Execution],
) -> tuple[dict[ViewKey, frozenset[Any]], list[list[ViewKey]]]:
    """Per-view allowed values (validity) and per-execution view groups."""
    allowed: dict[ViewKey, set[Any]] = {}
    groups: list[list[ViewKey]] = []
    for execution in executions:
        keys = [key for key in execution.alive_views]
        groups.append(keys)
        for key in keys:
            if key in allowed:
                allowed[key] &= set(execution.input_set)
            else:
                allowed[key] = set(execution.input_set)
    return {k: frozenset(v) for k, v in allowed.items()}, groups


def consensus_solvable(executions: Sequence[Execution]) -> SolvabilityResult:
    """Exact k=1 decision via connected components of view co-occurrence."""
    allowed, groups = build_constraints(executions)
    parent: dict[ViewKey, ViewKey] = {key: key for key in allowed}

    def find(key: ViewKey) -> ViewKey:
        while parent[key] != key:
            parent[key] = parent[parent[key]]
            key = parent[key]
        return key

    def union(a: ViewKey, b: ViewKey) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for group in groups:
        for key in group[1:]:
            union(group[0], key)

    component_allowed: dict[ViewKey, frozenset[Any]] = {}
    for key, values in allowed.items():
        root = find(key)
        if root in component_allowed:
            component_allowed[root] &= values
        else:
            component_allowed[root] = values

    solvable = all(values for values in component_allowed.values())
    assignment = None
    if solvable:
        assignment = {
            key: min(component_allowed[find(key)], key=repr) for key in allowed
        }
    return SolvabilityResult(
        solvable=solvable,
        k=1,
        views=len(allowed),
        executions=len(executions),
        assignment=assignment,
    )


def kset_solvable(
    executions: Sequence[Execution],
    k: int,
    *,
    max_nodes: int = 5_000_000,
) -> SolvabilityResult:
    """Backtracking search (with forward checking) for a k-agreement map.

    Reductions applied before the search:

    - duplicate execution groups collapse (different crash patterns often
      yield identical decider-view sets);
    - groups with at most ``k`` views are dropped — they can never exceed
      ``k`` distinct values;
    - once a group has ``k`` distinct assigned values, the domains of its
      unassigned views are restricted to those values (forward checking),
      failing early on wipeout.

    ``max_nodes`` bounds the search; exceeding it raises RuntimeError (it
    never triggers for the paper-scale instances in the test suite).
    """
    if k == 1:
        return consensus_solvable(executions)
    allowed, raw_groups = build_constraints(executions)
    keys = sorted(allowed, key=repr)
    index = {key: i for i, key in enumerate(keys)}
    total_views = len(keys)

    group_sets = {
        frozenset(index[key] for key in group) for group in raw_groups
    }
    groups = [sorted(group) for group in group_sets if len(group) > k]

    membership: list[list[int]] = [[] for _ in range(total_views)]
    for gi, group in enumerate(groups):
        for vi in group:
            membership[vi].append(gi)

    domains: list[set[Any]] = [set(allowed[key]) for key in keys]
    if any(not domain for domain in domains):
        return SolvabilityResult(
            solvable=False, k=k, views=total_views, executions=len(executions)
        )
    assignment: list[Any] = [None] * total_views
    group_values: list[set[Any]] = [set() for _ in groups]
    unassigned: set[int] = set(range(total_views))
    nodes = 0

    def propagate(vi: int, value: Any, trail: list[tuple[int, Any]]) -> bool:
        """Assign view vi := value; forward-check; record removals."""
        assignment[vi] = value
        unassigned.discard(vi)
        saturated: list[int] = []
        for gi in membership[vi]:
            values = group_values[gi]
            if value not in values:
                if len(values) >= k:
                    return False  # group already full with other values
                values.add(value)
                trail.append((-1, gi))  # group-value addition marker
                if len(values) == k:
                    saturated.append(gi)
        for gi in saturated:
            values = group_values[gi]
            for other in groups[gi]:
                if assignment[other] is not None:
                    continue
                domain = domains[other]
                for v in list(domain):
                    if v not in values:
                        domain.discard(v)
                        trail.append((other, v))
                if not domain:
                    return False
        return True

    def undo(vi: int, value: Any, trail: list[tuple[int, Any]]) -> None:
        for entry, payload in reversed(trail):
            if entry == -1:
                group_values[payload].discard(value)
            else:
                domains[entry].add(payload)
        assignment[vi] = None
        unassigned.add(vi)

    def choose() -> int:
        return min(unassigned, key=lambda vi: len(domains[vi]))

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, total_views * 4 + 1000))

    def search() -> bool:
        nonlocal nodes
        nodes += 1
        if nodes > max_nodes:
            raise RuntimeError(
                f"solvability search exceeded {max_nodes} nodes; "
                "shrink n, f, rounds or the input domain"
            )
        if not unassigned:
            return True
        vi = choose()
        for value in sorted(domains[vi], key=repr):
            trail: list[tuple[int, Any]] = []
            if propagate(vi, value, trail):
                if search():
                    return True
            undo(vi, value, trail)
        return False

    try:
        solvable = search()
    finally:
        sys.setrecursionlimit(old_limit)
    return SolvabilityResult(
        solvable=solvable,
        k=k,
        views=total_views,
        executions=len(executions),
        assignment={keys[vi]: assignment[vi] for vi in range(total_views)}
        if solvable
        else None,
    )
