"""Worst-case adversary search: how bad can a model make a protocol?

The random adversaries estimate typical behaviour; the theorems speak of
*worst cases*.  For small systems this module searches the adversary's
whole move tree — every allowed suspicion family per round — and reports
the schedule that maximises an objective, by default the number of
distinct decided values (the quantity Theorem 3.1 bounds).

Uses:

- tightness: confirm the k-set detector's bound is achieved, per (n, k),
  by search rather than by a hand-crafted adversary (benchmark E1);
- robustness: confirm a protocol's property holds against *every*
  adversary of a model, not just sampled ones (exhaustive for ``n ≤ 4``);
- debugging: the returned worst suspicion history replays directly via
  :mod:`repro.core.replay`.

The admissible-history enumerator (:func:`iter_admissible_histories`) is
shared with the conformance kit's bounded model checker
(:mod:`repro.check.explore`): depth-first with prefix pruning — every
catalog predicate is prefix-closed — and a hard error when a reachable
prefix admits *no* extension, so an over-constrained search (e.g. a
``max_d_size`` below what ``CrashSync`` forces alive processes to suspect)
can never be mistaken for a vacuous proof.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.core.adversary import ScriptedAdversary
from repro.core.algorithm import Protocol
from repro.core.executor import run_protocol
from repro.core.predicate import Predicate
from repro.core.types import DHistory, DRound, ExecutionTrace, RRFDError
from repro.util.sets import all_subset_families

__all__ = [
    "NoAdmissibleExtension",
    "WorstCase",
    "admissible_rounds",
    "iter_admissible_histories",
    "search_worst_case",
    "holds_for_every_adversary",
]

Objective = Callable[[ExecutionTrace], float]


class NoAdmissibleExtension(RRFDError, ValueError):
    """A reachable prefix admits no next round of suspicions.

    Raised instead of silently enumerating nothing: an exhaustive check that
    visits zero histories proves nothing, and the usual cause — a
    ``max_d_size`` bound tighter than what the predicate forces (e.g.
    :class:`~repro.core.predicates.CrashSync` requiring alive processes to
    suspect every previously-suspected process) — is a caller bug worth a
    loud, attributed error.
    """

    def __init__(self, predicate: Predicate, history: DHistory) -> None:
        self.predicate = predicate
        self.history = history
        super().__init__(
            f"{predicate.describe()} admits no round-{len(history) + 1} "
            f"suspicion family extending the admissible prefix "
            f"{_render_history(history)} — if a max_d_size bound is in "
            "force, it is below what the predicate requires"
        )


def _render_history(history: DHistory) -> str:
    if not history:
        return "()"
    return "(" + "; ".join(
        "[" + ", ".join("{" + ",".join(map(str, sorted(d))) + "}" for d in d_round) + "]"
        for d_round in history
    ) + ")"


def distinct_decisions(trace: ExecutionTrace) -> float:
    """The default objective: number of distinct decided values."""
    return float(len(trace.decided_values))


def admissible_rounds(
    predicate: Predicate,
    history: DHistory,
    *,
    max_d_size: int | None = None,
) -> Iterator[DRound]:
    """Yield every suspicion family that admissibly extends ``history``."""
    for d_round in all_subset_families(predicate.n, max_size=max_d_size):
        if predicate.allows_extension(history, d_round):
            yield d_round


def iter_admissible_histories(
    predicate: Predicate,
    rounds: int,
    *,
    max_d_size: int | None = None,
    prefix: DHistory = (),
) -> Iterator[DHistory]:
    """Depth-first enumeration of every admissible ``rounds``-round history.

    Prefix-pruned: a round is only extended if the predicate allows it, so
    subtrees below inadmissible prefixes are never visited.  Raises
    :class:`NoAdmissibleExtension` if some reachable prefix has no allowed
    next round — exhaustion must never be silent.  ``prefix`` (assumed
    admissible) lets callers resume below a frontier, which is how the
    conformance kit parallelises the first round across workers.
    """
    if rounds < 0:
        raise ValueError(f"rounds must be ≥ 0, got {rounds}")
    if len(prefix) == rounds:
        yield prefix
        return
    extended = False
    for d_round in admissible_rounds(predicate, prefix, max_d_size=max_d_size):
        extended = True
        yield from iter_admissible_histories(
            predicate, rounds, max_d_size=max_d_size, prefix=prefix + (d_round,)
        )
    if not extended:
        raise NoAdmissibleExtension(predicate, prefix)


@dataclass
class WorstCase:
    """The maximising adversary found by :func:`search_worst_case`."""

    objective_value: float
    history: DHistory
    trace: ExecutionTrace
    histories_explored: int


def _run_history(
    protocol: Protocol, inputs: Sequence[Any], history: DHistory
) -> ExecutionTrace:
    adversary = ScriptedAdversary(len(inputs), list(history))
    return run_protocol(
        protocol, inputs, adversary, max_rounds=len(history)
    )


def search_worst_case(
    protocol: Protocol,
    inputs: Sequence[Any],
    predicate: Predicate,
    *,
    rounds: int = 1,
    objective: Objective = distinct_decisions,
    max_d_size: int | None = None,
    engine: str = "incremental",
) -> WorstCase:
    """Exhaustively maximise ``objective`` over the model's adversaries.

    Enumerates every allowed suspicion history of the given length
    (depth-first with prefix pruning — all catalog predicates are
    prefix-closed) and runs the protocol against each.  Exponential: keep
    ``n ≤ 4`` unbounded or pass ``max_d_size``.  Raises
    :class:`NoAdmissibleExtension` if the predicate (under ``max_d_size``)
    dead-ends before ``rounds`` rounds.

    ``engine="incremental"`` (default) walks the tree with forked executors
    — one protocol round per tree edge (:mod:`repro.check.engine`) —
    instead of replaying each history from round 1; ``engine="replay"``
    keeps the original behaviour.  The maximiser found is identical: both
    engines visit the same histories in the same order and executions are
    deterministic.  ``rounds == 0`` always uses replay.
    """
    n = len(inputs)
    if predicate.n != n:
        raise ValueError(f"predicate is for n={predicate.n}, inputs give {n}")
    if engine not in ("incremental", "replay"):
        raise ValueError(
            f"engine must be 'incremental' or 'replay', got {engine!r}"
        )
    best: WorstCase | None = None
    explored = 0
    if engine == "incremental" and rounds >= 1:
        # Imported here: repro.check.engine imports this module at top level.
        from repro.check.engine import IncrementalExplorer

        explorer = IncrementalExplorer(protocol, predicate, inputs,
                                       max_d_size=max_d_size)
        for run in explorer.runs(rounds):
            explored += run.count
            value = objective(run.trace)
            if best is None or value > best.objective_value:
                # An aggregated run stands for a decided subtree whose
                # leaves all share this trace: the maximiser the set-based
                # walk would pick is its DFS-first leaf.
                history = (
                    run.history if run.expand is None
                    else next(run.expand())
                )
                best = WorstCase(
                    objective_value=value,
                    history=history,
                    trace=run.trace,
                    histories_explored=0,
                )
    else:
        for history in iter_admissible_histories(
            predicate, rounds, max_d_size=max_d_size
        ):
            explored += 1
            trace = _run_history(protocol, inputs, history)
            value = objective(trace)
            if best is None or value > best.objective_value:
                best = WorstCase(
                    objective_value=value,
                    history=history,
                    trace=trace,
                    histories_explored=0,
                )
    assert best is not None  # rounds=0 yields (); dead-ends raised above
    best.histories_explored = explored
    return best


def holds_for_every_adversary(
    protocol: Protocol,
    inputs: Sequence[Any],
    predicate: Predicate,
    check: Callable[[ExecutionTrace], None],
    *,
    rounds: int = 1,
    max_d_size: int | None = None,
) -> int:
    """Run ``check`` (raising on failure) against every allowed adversary.

    Returns the number of histories verified — an exhaustive proof of the
    property for this (protocol, model, inputs, round count).  A vacuous
    proof is impossible: if the predicate admits no suspicion family in
    some round, :class:`NoAdmissibleExtension` is raised instead of
    returning 0.
    """
    n = len(inputs)
    if predicate.n != n:
        raise ValueError(f"predicate is for n={predicate.n}, inputs give {n}")
    verified = 0
    for history in iter_admissible_histories(
        predicate, rounds, max_d_size=max_d_size
    ):
        check(_run_history(protocol, inputs, history))
        verified += 1
    return verified
