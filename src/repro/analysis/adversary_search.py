"""Worst-case adversary search: how bad can a model make a protocol?

The random adversaries estimate typical behaviour; the theorems speak of
*worst cases*.  For small systems this module searches the adversary's
whole move tree — every allowed suspicion family per round — and reports
the schedule that maximises an objective, by default the number of
distinct decided values (the quantity Theorem 3.1 bounds).

Uses:

- tightness: confirm the k-set detector's bound is achieved, per (n, k),
  by search rather than by a hand-crafted adversary (benchmark E1);
- robustness: confirm a protocol's property holds against *every*
  adversary of a model, not just sampled ones (exhaustive for ``n ≤ 4``);
- debugging: the returned worst suspicion history replays directly via
  :mod:`repro.core.replay`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.core.adversary import ScriptedAdversary
from repro.core.algorithm import Protocol
from repro.core.executor import run_protocol
from repro.core.predicate import Predicate
from repro.core.types import DHistory, ExecutionTrace
from repro.util.sets import all_subset_families

__all__ = ["WorstCase", "search_worst_case", "holds_for_every_adversary"]

Objective = Callable[[ExecutionTrace], float]


def distinct_decisions(trace: ExecutionTrace) -> float:
    """The default objective: number of distinct decided values."""
    return float(len(trace.decided_values))


@dataclass
class WorstCase:
    """The maximising adversary found by :func:`search_worst_case`."""

    objective_value: float
    history: DHistory
    trace: ExecutionTrace
    histories_explored: int


def _run_history(
    protocol: Protocol, inputs: Sequence[Any], history: DHistory
) -> ExecutionTrace:
    adversary = ScriptedAdversary(len(inputs), list(history))
    return run_protocol(
        protocol, inputs, adversary, max_rounds=len(history)
    )


def search_worst_case(
    protocol: Protocol,
    inputs: Sequence[Any],
    predicate: Predicate,
    *,
    rounds: int = 1,
    objective: Objective = distinct_decisions,
    max_d_size: int | None = None,
) -> WorstCase:
    """Exhaustively maximise ``objective`` over the model's adversaries.

    Enumerates every allowed suspicion history of the given length
    (depth-first with prefix pruning — all catalog predicates are
    prefix-closed) and runs the protocol against each.  Exponential: keep
    ``n ≤ 4`` unbounded or pass ``max_d_size``.
    """
    n = len(inputs)
    if predicate.n != n:
        raise ValueError(f"predicate is for n={predicate.n}, inputs give {n}")
    best: WorstCase | None = None
    explored = 0

    def extend(history: DHistory) -> None:
        nonlocal best, explored
        if len(history) == rounds:
            explored += 1
            trace = _run_history(protocol, inputs, history)
            value = objective(trace)
            if best is None or value > best.objective_value:
                best = WorstCase(
                    objective_value=value,
                    history=history,
                    trace=trace,
                    histories_explored=0,
                )
            return
        for d_round in all_subset_families(n, max_size=max_d_size):
            candidate = history + (d_round,)
            if predicate.allows(candidate):
                extend(candidate)

    extend(())
    if best is None:
        raise ValueError(
            f"{predicate.describe()} allows no {rounds}-round history"
        )
    best.histories_explored = explored
    return best


def holds_for_every_adversary(
    protocol: Protocol,
    inputs: Sequence[Any],
    predicate: Predicate,
    check: Callable[[ExecutionTrace], None],
    *,
    rounds: int = 1,
    max_d_size: int | None = None,
) -> int:
    """Run ``check`` (raising on failure) against every allowed adversary.

    Returns the number of histories verified — an exhaustive proof of the
    property for this (protocol, model, inputs, round count).
    """
    n = len(inputs)
    verified = 0

    def extend(history: DHistory) -> None:
        nonlocal verified
        if len(history) == rounds:
            check(_run_history(protocol, inputs, history))
            verified += 1
            return
        for d_round in all_subset_families(n, max_size=max_d_size):
            candidate = history + (d_round,)
            if predicate.allows(candidate):
                extend(candidate)

    extend(())
    return verified
