"""Analysis tools: exhaustive solvability, knowledge propagation, lattices.

- :mod:`~repro.analysis.enumeration` — enumerate all synchronous crash
  executions of tiny systems (inputs × crash patterns → final views);
- :mod:`~repro.analysis.solvability` — decide whether *any* decision map
  solves k-set agreement over those executions (the lower-bound certificate
  for Corollaries 4.2/4.4);
- :mod:`~repro.analysis.knowledge` — knowledge propagation under the
  antisymmetric shared-memory predicate, incl. the paper's two-round
  conjecture (item 4);
- :mod:`~repro.analysis.lattice` — the pairwise submodel lattice of the
  model catalog (Section 2).
"""

from repro.analysis.adversary_search import (
    WorstCase,
    holds_for_every_adversary,
    search_worst_case,
)
from repro.analysis.complexes import (
    ProtocolComplex,
    consensus_disconnection,
    one_round_complex,
)
from repro.analysis.enumeration import (
    CrashPattern,
    Execution,
    enumerate_crash_patterns,
    enumerate_executions,
    freeze_value,
)
from repro.analysis.knowledge import (
    all_antisymmetric_rounds,
    propagate_knowledge,
    rounds_until_some_known_by_all,
    two_round_conjecture_counterexample,
)
from repro.analysis.lattice import (
    LatticeReport,
    compute_lattice,
    standard_catalog,
)
from repro.analysis.solvability import (
    SolvabilityResult,
    consensus_solvable,
    kset_solvable,
)

__all__ = [
    "WorstCase",
    "holds_for_every_adversary",
    "search_worst_case",
    "ProtocolComplex",
    "consensus_disconnection",
    "one_round_complex",
    "CrashPattern",
    "Execution",
    "enumerate_crash_patterns",
    "enumerate_executions",
    "freeze_value",
    "all_antisymmetric_rounds",
    "propagate_knowledge",
    "rounds_until_some_known_by_all",
    "two_round_conjecture_counterexample",
    "LatticeReport",
    "compute_lattice",
    "standard_catalog",
    "SolvabilityResult",
    "consensus_solvable",
    "kset_solvable",
]
