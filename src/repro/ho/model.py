"""The Heard-Of model as a first-class sibling of the RRFD predicate catalog.

In the Heard-Of (HO) model of Charron-Bost and Schiper a communication-closed
round assigns each process ``i`` the set ``HO(i, r)`` of processes it *heard
from* in round ``r``; a communication predicate constrains the whole HO
collection.  The RRFD view of the same round is the suspicion set
``D(i, r)`` — the processes ``i`` was told not to wait for — and under the
coverage guarantee ``S(i,r) ∪ D(i,r) = S`` the two are complements at fixed
``n``::

    HO(i, r) = S − D(i, r)          D(i, r) = S − HO(i, r)

:func:`to_suspicion` / :func:`from_suspicion` implement that bridge
losslessly (it is an involution, property-tested in ``tests/ho``), and the
framework rules translate into each other: the RRFD rule ``D(i, r) ≠ S``
(not everyone can be late) is exactly the HO rule ``HO(i, r) ≠ ∅`` (every
process hears someone, if only itself).

:class:`HOPredicate` mirrors :class:`repro.core.predicate.Predicate` clause
for clause — membership, prefix extension, hashable extension state,
constructive sampling, packed kernels — and every HO predicate exposes a
:meth:`HOPredicate.suspicion` view: a genuine RRFD
:class:`~repro.core.predicate.Predicate` whose admissible D-histories are
the complements of the admissible HO collections.  The suspicion views of
the catalog classes below carry :class:`~repro.core.predicate.FastPackedPredicate`
kernels, so HO exploration (``ConformanceSpec.predicate = lambda n:
ho(n).suspicion()``) rides the bitset engine's fast path unchanged; the
HO-side :meth:`HOPredicate.packed` objects delegate through the packed
complement (one XOR per round, :meth:`BitsetDomain.complement_round`).

Like the RRFD catalog, every ``packed()``/kernel override guards on exact
type: subclasses with changed semantics fall back to the bridged set oracle
automatically (the PR-7 contract, regression-tested in
``tests/ho/test_bridge_differential.py``).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.core.predicate import FastPackedPredicate, PackedPredicate, Predicate
from repro.core.types import DHistory, DRound, PackedDHistory, PackedDRound, ProcessId
from repro.util.bitset import BitsetDomain, domain as bitset_domain
from repro.util.sets import random_subset

__all__ = [
    "HORound",
    "HOHistory",
    "PackedHORound",
    "PackedHOHistory",
    "to_suspicion",
    "from_suspicion",
    "HOPredicate",
    "HOSuspicionView",
    "PackedHOPredicate",
    "FastPackedHOPredicate",
    "HOConjunction",
    "HONonEmpty",
    "HOAtLeast",
    "HOHearAll",
    "HONoSplit",
    "HOGlobalKernel",
    "HOUniform",
    "HOUniformVoting",
    "HOMustHear",
    "HO_CATALOG",
    "get_ho_predicate",
    "ho_predicate_names",
]

# One round of heard-of sets: HO[i] is the set process i heard from.
HORound = tuple[frozenset[ProcessId], ...]
# Heard-of collections across rounds: history[r-1] is the HORound of round r.
HOHistory = tuple[HORound, ...]
# Packed twins — the same n*n-bit layout as packed D-rounds (bit i*n + j set
# ⇔ j ∈ HO(i)), so one XOR with the all-lanes mask converts between them.
PackedHORound = int
PackedHOHistory = tuple[int, ...]


# ---------------------------------------------------------------------------
# the HO ↔ RRFD bridge


def _complement_round(sets: tuple[frozenset[ProcessId], ...], n: int) -> tuple[frozenset[ProcessId], ...]:
    dom = bitset_domain(n)
    return dom.unpack_round(dom.complement_round(dom.pack_round(sets)))


def to_suspicion(ho_history: HOHistory, n: int) -> DHistory:
    """The RRFD suspicion history of an HO collection: ``D = S − HO``."""
    return tuple(_complement_round(ho_round, n) for ho_round in ho_history)


def from_suspicion(d_history: DHistory, n: int) -> HOHistory:
    """The HO collection of a suspicion history: ``HO = S − D``.

    Inverse of :func:`to_suspicion`; the composition either way is the
    identity (complementation at fixed ``n`` is an involution).
    """
    return tuple(_complement_round(d_round, n) for d_round in d_history)


# ---------------------------------------------------------------------------
# the predicate hierarchy


class HOPredicate(ABC):
    """A communication predicate over finite HO collections.

    The structural mirror of :class:`repro.core.predicate.Predicate`: the
    framework-level rule here is ``HO(i, r) ≠ ∅`` (the complement of
    ``D(i, r) ≠ S``), enforced by :meth:`allows` for every model, and the
    ``is_symmetric`` flag makes the same claim about invariance under
    process permutations.
    """

    #: True iff the predicate is invariant under process permutations.
    is_symmetric: bool = False

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"n must be positive, got {n}")
        self.n = n
        self.everyone = frozenset(range(n))

    # ------------------------------------------------------------------ API

    def allows(self, ho_history: HOHistory) -> bool:
        """Whether the whole collection satisfies this predicate.

        Beyond the model-specific condition (:meth:`_allows`), every HO
        system forbids ``HO(i, r) = ∅``: a process always hears at least
        itself, the dual of the RRFD rule that not everyone can be late.
        """
        for ho_round in ho_history:
            self._validate_round(ho_round)
            if any(not heard for heard in ho_round):
                return False
        return self._allows(ho_history)

    @abstractmethod
    def _allows(self, ho_history: HOHistory) -> bool:
        """The model-specific condition; inputs are already shape-checked."""

    def allows_extension(self, ho_history: HOHistory, new_round: HORound) -> bool:
        """Whether ``ho_history + (new_round,)`` still satisfies the predicate."""
        return self.allows(ho_history + (new_round,))

    def extension_state(self, ho_history: HOHistory) -> object:
        """Hashable summary through which ``allows_extension`` sees history.

        Same contract as :meth:`repro.core.predicate.Predicate.extension_state`:
        for admissible collections, extension verdicts must be a function of
        ``(state, new_round)`` alone.
        """
        return ho_history

    @abstractmethod
    def sample_round(self, rng: random.Random, ho_history: HOHistory) -> HORound:
        """Draw a random next HO round consistent with ``ho_history``.

        Must always return a round such that ``allows_extension`` holds.
        """

    def suspicion(self) -> "HOSuspicionView":
        """This predicate as an RRFD :class:`Predicate` over D-histories.

        ``view.allows(h) == self.allows(from_suspicion(h, n))`` — the lens
        through which the conformance kit (specs, explore, shrink, the
        bitset engine) runs HO models without knowing about them.
        """
        return HOSuspicionView(self)

    def packed(self) -> "PackedHOPredicate":
        """The packed (integer-bitmask) admissibility view over HO rounds.

        The base implementation is the *bridged reference path* — unpack
        and delegate to the set-based methods, sound for any predicate and
        the differential oracle for the fast kernels.  Catalog classes
        override it (with an exact-type guard) to return a
        :class:`FastPackedHOPredicate` that answers through the suspicion
        kernel and one XOR per round.
        """
        return PackedHOPredicate(self)

    def _suspicion_kernel(self, view: "HOSuspicionView") -> PackedPredicate | None:
        """Fast packed kernel for the suspicion view, or ``None`` (bridge).

        Catalog overrides must guard on exact type, so subclasses with
        changed semantics fall back to the set oracle.
        """
        return None

    @property
    def name(self) -> str:
        return type(self).__name__

    def describe(self) -> str:
        """Human-readable statement of the guarantee (HO notation)."""
        return self.name

    # -------------------------------------------------------------- helpers

    def _validate_round(self, ho_round: HORound) -> None:
        if len(ho_round) != self.n:
            raise ValueError(
                f"round has {len(ho_round)} heard-of sets, expected n={self.n}"
            )
        for pid, heard in enumerate(ho_round):
            if not heard <= self.everyone:
                raise ValueError(
                    f"HO({pid}) = {sorted(heard)} contains ids outside S"
                )

    def __and__(self, other: "HOPredicate") -> "HOConjunction":
        return HOConjunction(self, other)

    def __repr__(self) -> str:
        return f"{self.name}(n={self.n})"


class HOSuspicionView(Predicate):
    """An HO predicate seen through the complement bridge, as an RRFD model.

    This is a real :class:`~repro.core.predicate.Predicate` — conformance
    specs, ``explore()``, ``shrink()`` and the submodel checker all accept
    it directly.  Both framework rules coincide under complementation
    (``D ≠ S`` ⇔ ``HO ≠ ∅``), so the two ``allows`` agree exactly on the
    bridged histories.
    """

    def __init__(self, ho: HOPredicate) -> None:
        super().__init__(ho.n)
        self.ho = ho
        self.is_symmetric = ho.is_symmetric

    def _allows(self, history: DHistory) -> bool:
        return self.ho._allows(from_suspicion(history, self.n))

    def allows_extension(self, history: DHistory, new_round: DRound) -> bool:
        return self.ho.allows_extension(
            from_suspicion(history, self.n),
            _complement_round(new_round, self.n),
        )

    def extension_state(self, history: DHistory) -> object:
        return self.ho.extension_state(from_suspicion(history, self.n))

    def sample_round(self, rng: random.Random, history: DHistory) -> DRound:
        ho_round = self.ho.sample_round(rng, from_suspicion(history, self.n))
        return _complement_round(ho_round, self.n)

    def packed(self) -> PackedPredicate:
        if type(self) is not HOSuspicionView:
            return Predicate.packed(self)
        kernel = self.ho._suspicion_kernel(self)
        return kernel if kernel is not None else PackedPredicate(self)

    @property
    def name(self) -> str:
        return f"Suspicion[{self.ho.name}]"

    def describe(self) -> str:
        return f"D-view of {self.ho.describe()}"


class PackedHOPredicate:
    """Set-based reference semantics exposed over packed HO rounds.

    The HO twin of :class:`repro.core.predicate.PackedPredicate`: every
    query unpacks through the interned bitset tables and delegates to the
    owning :class:`HOPredicate`'s frozenset methods.  ``fast`` is False —
    this is the differential oracle the fast path is tested against.
    """

    fast = False

    def __init__(self, ho: HOPredicate) -> None:
        self.ho = ho
        self.n = ho.n
        self.domain: BitsetDomain = bitset_domain(ho.n)

    def allows_history(self, packed_ho: PackedHOHistory) -> bool:
        return self.ho.allows(self.domain.unpack_history(packed_ho))

    def allows_extension(self, packed_ho: PackedHOHistory, rint: PackedHORound) -> bool:
        return self.ho.allows_extension(
            self.domain.unpack_history(packed_ho),
            self.domain.unpack_round(rint),
        )

    def extension_state(self, packed_ho: PackedHOHistory) -> object:
        return self.ho.extension_state(self.domain.unpack_history(packed_ho))


class FastPackedHOPredicate(PackedHOPredicate):
    """Fast packed HO kernel: complement once, answer in suspicion masks.

    Wraps the predicate's suspicion-side
    :class:`~repro.core.predicate.FastPackedPredicate` kernel and converts
    each packed HO round with a single XOR against the all-lanes mask
    (:meth:`BitsetDomain.complement_round`), so HO-side packed queries cost
    the same handful of int ops as the RRFD fast path they ride.
    """

    fast = True

    def __init__(self, ho: HOPredicate) -> None:
        super().__init__(ho)
        kernel = ho._suspicion_kernel(ho.suspicion())
        if kernel is None or not kernel.fast:  # pragma: no cover - misuse
            raise TypeError(
                f"{ho.name} declares no fast suspicion kernel; use the "
                "PackedHOPredicate bridge instead"
            )
        self.kernel = kernel
        self._all = self.domain.full_round

    def _flip(self, packed_ho: PackedHOHistory) -> PackedDHistory:
        mask = self._all
        return tuple(rint ^ mask for rint in packed_ho)

    def allows_history(self, packed_ho: PackedHOHistory) -> bool:
        return self.kernel.allows_history(self._flip(packed_ho))

    def allows_extension(self, packed_ho: PackedHOHistory, rint: PackedHORound) -> bool:
        return self.kernel.allows_extension(self._flip(packed_ho), rint ^ self._all)

    def extension_state(self, packed_ho: PackedHOHistory) -> object:
        return self.kernel.extension_state(self._flip(packed_ho))


class HOConjunction(HOPredicate):
    """Conjunction of HO predicates over the same process set.

    Sampling draws from the first conjunct and rejects against the rest
    (mirror of :class:`repro.core.predicate.Conjunction`).
    """

    def __init__(self, *parts: HOPredicate, max_attempts: int = 10_000) -> None:
        if not parts:
            raise ValueError("HOConjunction needs at least one predicate")
        ns = {p.n for p in parts}
        if len(ns) != 1:
            raise ValueError(f"conjuncts disagree on n: {sorted(ns)}")
        super().__init__(parts[0].n)
        self.parts = parts
        self.max_attempts = max_attempts
        self.is_symmetric = all(part.is_symmetric for part in parts)

    def _allows(self, ho_history: HOHistory) -> bool:
        return all(part.allows(ho_history) for part in self.parts)

    def extension_state(self, ho_history: HOHistory) -> object:
        return tuple(part.extension_state(ho_history) for part in self.parts)

    def sample_round(self, rng: random.Random, ho_history: HOHistory) -> HORound:
        for _ in range(self.max_attempts):
            candidate = self.parts[0].sample_round(rng, ho_history)
            if all(
                part.allows_extension(ho_history, candidate)
                for part in self.parts[1:]
            ):
                return candidate
        raise RuntimeError(
            f"could not sample a round satisfying {self.describe()} after "
            f"{self.max_attempts} attempts"
        )

    def describe(self) -> str:
        return " ∧ ".join(part.describe() for part in self.parts)


# ---------------------------------------------------------------------------
# the catalog


def _nonempty_subset(
    everyone: frozenset[ProcessId], rng: random.Random, *, min_size: int = 1
) -> frozenset[ProcessId]:
    """A uniform-ish random subset of size ≥ ``min_size`` (≥ 1)."""
    size = rng.randint(max(1, min_size), len(everyone))
    return frozenset(rng.sample(sorted(everyone), size))


class HONonEmpty(HOPredicate):
    """The top of the HO lattice: only the framework rule ``HO(i, r) ≠ ∅``.

    The complement of :class:`repro.core.predicate.Unconstrained` — its
    suspicion view admits exactly the unconstrained D-histories.
    """

    is_symmetric = True

    def _allows(self, ho_history: HOHistory) -> bool:
        return True

    def extension_state(self, ho_history: HOHistory) -> object:
        return ()

    def describe(self) -> str:
        return "HONonEmpty: HO(i,r) ≠ ∅"

    def sample_round(self, rng: random.Random, ho_history: HOHistory) -> HORound:
        return tuple(
            _nonempty_subset(self.everyone, rng) for _ in range(self.n)
        )

    def packed(self) -> PackedHOPredicate:
        if type(self) is not HONonEmpty:
            return HOPredicate.packed(self)
        return FastPackedHOPredicate(self)

    def _suspicion_kernel(self, view: HOSuspicionView) -> PackedPredicate | None:
        if type(self) is not HONonEmpty:
            return None
        # FastPackedPredicate's defaults are exactly the framework rule
        # (the n−1 size bound on D = the nonemptiness of HO).
        return FastPackedPredicate(view)


class HOAtLeast(HOPredicate):
    """Minimum audibility: every process hears at least ``m`` others.

    ``∀ r, i: |HO(i, r)| ≥ m`` ⇔ ``|D(i, r)| ≤ n − m`` — the HO face of the
    asynchronous ``n − f`` wait rule.
    """

    is_symmetric = True

    def __init__(self, n: int, m: int) -> None:
        super().__init__(n)
        if not 1 <= m <= n:
            raise ValueError(f"need 1 ≤ m ≤ n, got m={m}")
        self.m = m

    def _allows(self, ho_history: HOHistory) -> bool:
        return all(
            len(heard) >= self.m
            for ho_round in ho_history
            for heard in ho_round
        )

    def extension_state(self, ho_history: HOHistory) -> object:
        return ()

    def describe(self) -> str:
        return f"HOAtLeast(m={self.m}): |HO(i,r)| ≥ {self.m}"

    def sample_round(self, rng: random.Random, ho_history: HOHistory) -> HORound:
        return tuple(
            _nonempty_subset(self.everyone, rng, min_size=self.m)
            for _ in range(self.n)
        )

    def packed(self) -> PackedHOPredicate:
        if type(self) is not HOAtLeast:
            return HOPredicate.packed(self)
        return FastPackedHOPredicate(self)

    def _suspicion_kernel(self, view: HOSuspicionView) -> PackedPredicate | None:
        if type(self) is not HOAtLeast:
            return None
        return _AtLeastKernel(view, self.n - self.m)


class _AtLeastKernel(FastPackedPredicate):
    """``|D(i,r)| ≤ n − m``, per round, as a mask-table size cap."""

    def __init__(self, view: HOSuspicionView, bound: int) -> None:
        super().__init__(view)
        self.bound = min(bound, self.n - 1)

    def size_bound(self, state: object) -> int:
        return self.bound


class HOHearAll(HOAtLeast):
    """Lock-step synchrony: ``HO(i, r) = S`` always (``D(i, r) = ∅``).

    The ``m = n`` face of :class:`HOAtLeast`, named because it is the
    canonical target of equivalence certificates — e.g. the predicate
    derived from a fault-free :class:`~repro.substrates.messaging.chaos.FaultPlan`
    is provably equivalent to it (``python -m repro ho --certify``).
    """

    def __init__(self, n: int) -> None:
        super().__init__(n, n)

    def describe(self) -> str:
        return "HOHearAll: HO(i,r) = S"

    def packed(self) -> PackedHOPredicate:
        if type(self) is not HOHearAll:
            return HOPredicate.packed(self)
        return FastPackedHOPredicate(self)

    def _suspicion_kernel(self, view: HOSuspicionView) -> PackedPredicate | None:
        if type(self) is not HOHearAll:
            return None
        return _AtLeastKernel(view, 0)


class HONoSplit(HOPredicate):
    """No split rounds: every two heard-of sets intersect.

    ``∀ r, i, j: HO(i, r) ∩ HO(j, r) ≠ ∅`` ⇔ ``D(i, r) ∪ D(j, r) ≠ S`` —
    the safety predicate of UniformVoting-style consensus (no round can
    partition the processes into mutually deaf camps).
    """

    is_symmetric = True

    def _allows(self, ho_history: HOHistory) -> bool:
        for ho_round in ho_history:
            for i in range(self.n):
                for j in range(i + 1, self.n):
                    if not ho_round[i] & ho_round[j]:
                        return False
        return True

    def extension_state(self, ho_history: HOHistory) -> object:
        return ()

    def describe(self) -> str:
        return "HONoSplit: HO(i,r) ∩ HO(j,r) ≠ ∅"

    def sample_round(self, rng: random.Random, ho_history: HOHistory) -> HORound:
        # A shared pivot guarantees pairwise intersection constructively.
        pivot = rng.randrange(self.n)
        return tuple(
            frozenset({pivot}) | random_subset(self.everyone, rng)
            for _ in range(self.n)
        )

    def packed(self) -> PackedHOPredicate:
        if type(self) is not HONoSplit:
            return HOPredicate.packed(self)
        return FastPackedHOPredicate(self)

    def _suspicion_kernel(self, view: HOSuspicionView) -> PackedPredicate | None:
        if type(self) is not HONoSplit:
            return None
        return _NoSplitKernel(view)


class _NoSplitKernel(FastPackedPredicate):
    """``D(i) ∪ D(j) ≠ S`` pairwise, checked incrementally during the walk."""

    def push(self, state, aux, pid, mask, masks):
        full = self.domain.full
        for prev in range(pid):
            if masks[prev] | mask == full:
                return None
        return aux


class HOGlobalKernel(HOPredicate):
    """A global kernel each round: someone is heard by everyone.

    ``∀ r: ⋂_i HO(i, r) ≠ ∅`` ⇔ ``⋃_i D(i, r) ≠ S``.  Strictly stronger
    than :class:`HONoSplit` for ``n ≥ 3`` (pairwise intersection does not
    imply a common element — the separation witness ``HO =
    ({0,1}, {1,2}, {0,2})`` is this repo's canonical golden artifact) and
    equivalent to it at ``n = 2``; both facts are machine-checked by
    :mod:`repro.ho.certify`.
    """

    is_symmetric = True

    def _allows(self, ho_history: HOHistory) -> bool:
        for ho_round in ho_history:
            kernel = ho_round[0]
            for heard in ho_round[1:]:
                kernel &= heard
            if not kernel:
                return False
        return True

    def extension_state(self, ho_history: HOHistory) -> object:
        return ()

    def describe(self) -> str:
        return "HOGlobalKernel: ⋂ᵢHO(i,r) ≠ ∅"

    def sample_round(self, rng: random.Random, ho_history: HOHistory) -> HORound:
        pivot = rng.randrange(self.n)
        return tuple(
            frozenset({pivot}) | random_subset(self.everyone, rng)
            for _ in range(self.n)
        )

    def packed(self) -> PackedHOPredicate:
        if type(self) is not HOGlobalKernel:
            return HOPredicate.packed(self)
        return FastPackedHOPredicate(self)

    def _suspicion_kernel(self, view: HOSuspicionView) -> PackedPredicate | None:
        if type(self) is not HOGlobalKernel:
            return None
        return _GlobalKernelKernel(view)


class _GlobalKernelKernel(FastPackedPredicate):
    """``⋃D ≠ S``: thread the running union, prune the moment it saturates."""

    def begin(self, state: object) -> int:
        return 0

    def push(self, state, aux, pid, mask, masks):
        union = aux | mask
        if union == self.domain.full:
            return None
        return union


class HOUniform(HOPredicate):
    """Uniform rounds: everyone hears exactly the same set.

    ``∀ r, i, j: HO(i, r) = HO(j, r)`` ⇔ ``D(i, r) = D(j, r)`` — the HO
    face of :class:`repro.core.predicates.SemiSyncEquality`.
    """

    is_symmetric = True

    def _allows(self, ho_history: HOHistory) -> bool:
        return all(
            all(heard == ho_round[0] for heard in ho_round[1:])
            for ho_round in ho_history
        )

    def extension_state(self, ho_history: HOHistory) -> object:
        return ()

    def describe(self) -> str:
        return "HOUniform: HO(i,r) = HO(j,r)"

    def sample_round(self, rng: random.Random, ho_history: HOHistory) -> HORound:
        common = _nonempty_subset(self.everyone, rng)
        return tuple(common for _ in range(self.n))

    def packed(self) -> PackedHOPredicate:
        if type(self) is not HOUniform:
            return HOPredicate.packed(self)
        return FastPackedHOPredicate(self)

    def _suspicion_kernel(self, view: HOSuspicionView) -> PackedPredicate | None:
        if type(self) is not HOUniform:
            return None
        return _UniformKernel(view)


class _UniformKernel(FastPackedPredicate):
    """All masks equal: every later mask must match the first."""

    def push(self, state, aux, pid, mask, masks):
        if pid and mask != masks[0]:
            return None
        return aux


class HOUniformVoting(HOPredicate):
    """The phased predicate UniformVoting terminates under, with ≤ f faults.

    Rounds alternate phases (1-based round ``r``):

    - **odd rounds** (value exchange): uniform with at most ``f`` unheard —
      ``HO(i, r) = HO(j, r)`` and ``|S − HO(i, r)| ≤ f``;
    - **even rounds** (vote exchange): at most ``f`` processes are unheard
      by *anyone* — ``|⋃_i (S − HO(i, r))| ≤ f``.

    The odd-round uniformity forces every process through identical state
    transitions, so UniformVoting decides within two phases; the even-round
    clause is the ≤ f-crash shape of the vote exchange.  Dropping either
    clause (``HOPredicate`` weakening) breaks termination or agreement —
    the conformance kit's sanity harness exercises exactly that.
    """

    is_symmetric = True

    def __init__(self, n: int, f: int = 1) -> None:
        super().__init__(n)
        if not 0 <= f < n:
            raise ValueError(f"need 0 ≤ f < n, got f={f}")
        self.f = f

    def _round_ok(self, ho_round: HORound, index: int) -> bool:
        everyone = self.everyone
        if index % 2 == 0:  # odd round (1-based): uniform, ≤ f unheard
            first = ho_round[0]
            if len(everyone - first) > self.f:
                return False
            return all(heard == first for heard in ho_round[1:])
        unheard: frozenset[ProcessId] = frozenset()
        for heard in ho_round:
            unheard |= everyone - heard
        return len(unheard) <= self.f

    def _allows(self, ho_history: HOHistory) -> bool:
        return all(
            self._round_ok(ho_round, index)
            for index, ho_round in enumerate(ho_history)
        )

    def allows_extension(self, ho_history: HOHistory, new_round: HORound) -> bool:
        self._validate_round(new_round)
        if any(not heard for heard in new_round):
            return False
        return self._round_ok(new_round, len(ho_history))

    def extension_state(self, ho_history: HOHistory) -> object:
        # Phase parity is all an extension verdict depends on.
        return len(ho_history) % 2

    def describe(self) -> str:
        return (
            f"HOUniformVoting(f={self.f}): odd rounds uniform with "
            f"|S−HO| ≤ {self.f}, even rounds |⋃(S−HO)| ≤ {self.f}"
        )

    def sample_round(self, rng: random.Random, ho_history: HOHistory) -> HORound:
        everyone = self.everyone
        if len(ho_history) % 2 == 0:  # next round is odd: uniform
            missing = random_subset(everyone, rng, max_size=self.f)
            common = everyone - missing
            return tuple(common for _ in range(self.n))
        pool = random_subset(everyone, rng, max_size=self.f)
        return tuple(
            everyone - random_subset(pool, rng) for _ in range(self.n)
        )

    def packed(self) -> PackedHOPredicate:
        if type(self) is not HOUniformVoting:
            return HOPredicate.packed(self)
        return FastPackedHOPredicate(self)

    def _suspicion_kernel(self, view: HOSuspicionView) -> PackedPredicate | None:
        if type(self) is not HOUniformVoting:
            return None
        return _UniformVotingKernel(view, self.f)


class _UniformVotingKernel(FastPackedPredicate):
    """Phase-parity state: odd rounds all-equal ∧ |D| ≤ f, even |⋃D| ≤ f."""

    def __init__(self, view: HOSuspicionView, f: int) -> None:
        super().__init__(view)
        self.f = f

    def initial_state(self) -> int:
        return 0  # parity of rounds folded so far: 0 ⇒ next round is odd

    def advance(self, state: int, rint: PackedDRound) -> int:
        return state ^ 1

    def size_bound(self, state: int) -> int:
        return min(self.f, self.n - 1)

    def begin(self, state: int) -> int:
        return 0  # running union of placed masks (even rounds only)

    def push(self, state, aux, pid, mask, masks):
        if state == 0:  # odd round: uniformity
            if pid and mask != masks[0]:
                return None
            return aux
        union = aux | mask
        if union.bit_count() > self.f:
            return None
        return union


class HOMustHear(HOPredicate):
    """Per-receiver obligations: ``HO(i, r) ⊇ must_hear[i]`` every round.

    The output language of :func:`repro.ho.derive.derive`: each process is
    guaranteed to hear at least the senders whose links the fault plan
    leaves intact.  Suspicion form: ``D(i, r) ∩ must_hear[i] = ∅``.
    Generally *not* symmetric — the obligations name concrete processes.
    """

    def __init__(self, n: int, must_hear: tuple[frozenset[ProcessId], ...]) -> None:
        super().__init__(n)
        if len(must_hear) != n:
            raise ValueError(
                f"must_hear has {len(must_hear)} rows, expected n={n}"
            )
        for pid, row in enumerate(must_hear):
            if not row <= self.everyone:
                raise ValueError(
                    f"must_hear[{pid}] = {sorted(row)} contains ids outside S"
                )
        self.must_hear = tuple(frozenset(row) for row in must_hear)

    def _allows(self, ho_history: HOHistory) -> bool:
        return all(
            self.must_hear[pid] <= heard
            for ho_round in ho_history
            for pid, heard in enumerate(ho_round)
        )

    def extension_state(self, ho_history: HOHistory) -> object:
        return ()

    def describe(self) -> str:
        rows = ", ".join(
            f"HO({pid}) ⊇ {{{', '.join(map(str, sorted(row)))}}}"
            for pid, row in enumerate(self.must_hear)
            if row
        )
        return f"HOMustHear: {rows or 'no obligations'}"

    def sample_round(self, rng: random.Random, ho_history: HOHistory) -> HORound:
        ho_round = []
        for pid in range(self.n):
            base = self.must_hear[pid]
            heard = base | random_subset(self.everyone - base, rng)
            if not heard:
                heard = frozenset({pid})
            ho_round.append(heard)
        return tuple(ho_round)

    def packed(self) -> PackedHOPredicate:
        if type(self) is not HOMustHear:
            return HOPredicate.packed(self)
        return FastPackedHOPredicate(self)

    def _suspicion_kernel(self, view: HOSuspicionView) -> PackedPredicate | None:
        if type(self) is not HOMustHear:
            return None
        return _MustHearKernel(view, self.must_hear)


class _MustHearKernel(FastPackedPredicate):
    """``D(i) ∩ must_hear[i] = ∅`` as one AND per mask."""

    def __init__(
        self,
        view: HOSuspicionView,
        must_hear: tuple[frozenset[ProcessId], ...],
    ) -> None:
        super().__init__(view)
        dom = self.domain
        self.must_masks = tuple(dom.pack_set(row) for row in must_hear)

    def pid_masks(self, state, pid, max_d_size):
        # Pre-filtering keeps the walk small; push re-checks, so the table
        # remains a plain (order-preserving) restriction of the ranked one.
        forbidden = self.must_masks[pid]
        return tuple(
            mask
            for mask in super().pid_masks(state, pid, max_d_size)
            if not mask & forbidden
        )

    def mask_ok(self, state, pid, mask):
        return (
            mask.bit_count() <= self.size_bound(state)
            and not mask & self.must_masks[pid]
        )

    def push(self, state, aux, pid, mask, masks):
        if mask & self.must_masks[pid]:
            return None
        return aux


# ---------------------------------------------------------------------------
# named catalog registry (the CLI / certificate-artifact handle space)

HO_CATALOG: dict[str, "type[HOPredicate] | object"] = {
    "nonempty": lambda n: HONonEmpty(n),
    "at-least-2": lambda n: HOAtLeast(n, min(2, n)),
    "hear-all": lambda n: HOHearAll(n),
    "no-split": lambda n: HONoSplit(n),
    "global-kernel": lambda n: HOGlobalKernel(n),
    "uniform": lambda n: HOUniform(n),
    "uniform-voting": lambda n: HOUniformVoting(n, f=1),
}


def ho_predicate_names() -> list[str]:
    """The registered HO catalog names, sorted."""
    return sorted(HO_CATALOG)


def get_ho_predicate(name: str, n: int) -> HOPredicate:
    """Instantiate a catalog HO predicate by name at size ``n``."""
    try:
        factory = HO_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"no HO predicate named {name!r}; registered: {ho_predicate_names()}"
        ) from None
    return factory(n)
