"""Registered Heard-Of conformance specs.

One registration so far: ``ho-uniform-voting`` — UniformVoting consensus
under :class:`~repro.ho.model.HOUniformVoting` run *through its suspicion
view*, so the whole conformance kit (exhaustive exploration, the bitset
engine, fuzzing, shrinking, golden replay) applies unchanged to an HO
spec.  The bridge is the registration's point: an HO model claim becomes
checkable with zero new engine code.

Imported by :mod:`repro.check.specs` at registry-population time (this
module must therefore not import ``repro.check.specs`` back — it uses
:mod:`repro.check.spec` primitives only).
"""

from __future__ import annotations

import random

from repro.check.spec import ConformanceSpec, TraceInvariant, register
from repro.check.specs import structural_invariant
from repro.ho.model import HOUniformVoting
from repro.ho.protocol import uniform_voting_protocol
from repro.protocols.properties import (
    check_kset_agreement,
    check_termination,
    check_validity,
)

__all__ = ["UNIFORM_VOTING_ROUNDS", "uniform_voting_f"]

UNIFORM_VOTING_ROUNDS = 4  # two phases: uniformity makes phase 2 decide


def uniform_voting_f(n: int) -> int:
    """Fault budget exercised by the ``ho-uniform-voting`` spec."""
    return 1


def _distinct_inputs(n: int) -> list[tuple[int, ...]]:
    return [tuple(range(n))]


def _sample_int_inputs(n: int, rng: random.Random) -> tuple[int, ...]:
    return tuple(rng.randrange(n) for _ in range(n))


register(ConformanceSpec(
    name="ho-uniform-voting",
    title="UniformVoting consensus under the HOUniformVoting predicate "
          "(Heard-Of model via the suspicion bridge)",
    protocol=lambda n: uniform_voting_protocol(),
    predicate=lambda n: HOUniformVoting(n, uniform_voting_f(n)).suspicion(),
    rounds=lambda n: UNIFORM_VOTING_ROUNDS,
    invariants=(
        TraceInvariant(
            "agreement",
            lambda t, n: check_kset_agreement(t, 1),
            "a single decided value",
        ),
        TraceInvariant("validity", lambda t, n: check_validity(t)),
        TraceInvariant(
            "termination",
            lambda t, n: check_termination(t, by_round=UNIFORM_VOTING_ROUNDS),
            "every process decides within two phases",
        ),
        structural_invariant(),
    ),
    exhaustive_inputs=_distinct_inputs,
    sample_inputs=_sample_int_inputs,
    symmetry="labels",
    notes="Charron-Bost & Schiper's UniformVoting; no failure detector — "
          "agreement comes from the communication predicate alone. "
          "symmetry='labels' because the min tie-break makes per-history "
          "verdicts orbit-dependent while violation existence is not.",
))
