"""The Heard-Of model as a first-class sibling of the RRFD predicate catalog.

``HO(i, r)`` — the processes ``i`` *heard from* in round ``r`` — is the
complement view of the paper's suspicion sets: ``HO(i, r) = S − D(i, r)``.
:mod:`repro.ho.model` makes that bridge lossless and two-way (set and
packed forms), so every HO predicate rides the existing exploration,
shrinking, and bitset machinery through its ``suspicion()`` view;
:mod:`repro.ho.derive` compiles :class:`~repro.substrates.messaging.chaos.FaultPlan`
fault vocabulary into HO obligations; :mod:`repro.ho.certify` turns
containment questions between predicates into machine-checked equivalence
certificates and shrunk, replayable separation witnesses.
"""

from repro.ho.certify import (
    CertifySuiteReport,
    ContainmentResult,
    EquivalenceCertificate,
    PredicateRef,
    certify_all,
    contains,
    equivalence,
    find_separation,
    load_certificate,
    replay_certificate,
    replay_separation,
    save_certificate,
    separation_spec,
)
from repro.ho.derive import derive, link_reliable, project_ho
from repro.ho.model import (
    HO_CATALOG,
    HOAtLeast,
    HOConjunction,
    HOGlobalKernel,
    HOHearAll,
    HOHistory,
    HOMustHear,
    HONonEmpty,
    HONoSplit,
    HOPredicate,
    HORound,
    HOUniform,
    HOUniformVoting,
    from_suspicion,
    get_ho_predicate,
    ho_predicate_names,
    to_suspicion,
)
from repro.ho.protocol import UniformVotingProcess, uniform_voting_protocol

__all__ = [
    "HO_CATALOG",
    "HOAtLeast",
    "HOConjunction",
    "HOGlobalKernel",
    "HOHearAll",
    "HOHistory",
    "HOMustHear",
    "HONonEmpty",
    "HONoSplit",
    "HOPredicate",
    "HORound",
    "HOUniform",
    "HOUniformVoting",
    "from_suspicion",
    "get_ho_predicate",
    "ho_predicate_names",
    "to_suspicion",
    "derive",
    "link_reliable",
    "project_ho",
    "CertifySuiteReport",
    "ContainmentResult",
    "EquivalenceCertificate",
    "PredicateRef",
    "certify_all",
    "contains",
    "equivalence",
    "find_separation",
    "load_certificate",
    "replay_certificate",
    "replay_separation",
    "save_certificate",
    "separation_spec",
    "UniformVotingProcess",
    "uniform_voting_protocol",
]
