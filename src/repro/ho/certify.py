"""Machine-checked equivalence/separation certificates between HO predicates.

Attiya et al. study when two communication models are *equivalent* (each
simulates the other) and when they *separate*; at bounded ``(n, rounds)``
both questions are decidable by brute force, and this module makes the
answers into replayable artifacts:

- :func:`contains` decides ``A ⊆ B`` (every A-admissible HO collection is
  B-admissible) by exhaustive enumeration — through the packed suspicion
  kernels when both predicates carry one (the PR-7 bitset fast path), or
  through :func:`repro.core.submodel.implies_exhaustive` on the set path
  (``bitset=False``); the two modes are differentially equal.
- :func:`equivalence` runs both directions and yields an
  :class:`EquivalenceCertificate`, serialized as an ``rrfd-equivalence-v1``
  JSON artifact; :func:`replay_certificate` re-runs the bounded check and
  asserts the recorded verdict still holds.
- :func:`find_separation` hunts a witness through the conformance kit:
  :func:`separation_spec` wraps the pair as a dynamic
  :class:`~repro.check.spec.ConformanceSpec` whose single invariant —
  *named after the pair* — fails exactly on A-admissible collections B
  rejects, so ``explore()`` finds a witness, :func:`repro.check.shrink.shrink`
  minimizes it while provably preserving the same separating pair, and the
  result saves as a standard ``rrfd-counterexample-v1`` artifact
  (:func:`replay_separation` rebuilds the pair from the artifact's spec
  name and replays it).

Predicates are referenced by :class:`PredicateRef` — a catalog name
(:data:`repro.ho.model.HO_CATALOG`) or an inlined derived
:class:`~repro.ho.model.HOMustHear` obligation — so artifacts are
self-contained and survive on disk.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.check.explore import explore
from repro.check.shrink import (
    ShrinkResult,
    counterexample_to_dict,
    replay_counterexample,
    save_counterexample,
    shrink,
)
from repro.check.spec import ConformanceSpec, TraceInvariant
from repro.core.algorithm import RoundProcess, make_protocol
from repro.core.submodel import implies_exhaustive
from repro.core.types import ExecutionTrace
from repro.ho.model import (
    HOHistory,
    HOMustHear,
    HOPredicate,
    from_suspicion,
    get_ho_predicate,
    ho_predicate_names,
)

__all__ = [
    "EQUIVALENCE_FORMAT",
    "SEPARATION_SPEC_PREFIX",
    "PredicateRef",
    "ContainmentResult",
    "EquivalenceCertificate",
    "contains",
    "equivalence",
    "separation_spec",
    "find_separation",
    "save_certificate",
    "load_certificate",
    "replay_certificate",
    "replay_separation",
    "CertifySuiteReport",
    "certify_all",
]

EQUIVALENCE_FORMAT = "rrfd-equivalence-v1"
SEPARATION_SPEC_PREFIX = "ho-sep:"


# ---------------------------------------------------------------------------
# predicate references (the serializable handle space)


@dataclass(frozen=True)
class PredicateRef:
    """A serializable reference to an HO predicate.

    ``kind="catalog"`` names an entry of :data:`~repro.ho.model.HO_CATALOG`;
    ``kind="derived"`` inlines an :class:`~repro.ho.model.HOMustHear`
    obligation row by row (the output of :func:`repro.ho.derive.derive`),
    so certificates about derived predicates replay without the plan.
    """

    kind: str
    name: str
    must_hear: tuple[tuple[int, ...], ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("catalog", "derived"):
            raise ValueError(f"unknown PredicateRef kind {self.kind!r}")
        if self.kind == "derived" and self.must_hear is None:
            raise ValueError("derived PredicateRef needs its must_hear rows")

    @classmethod
    def catalog(cls, name: str) -> "PredicateRef":
        if name not in ho_predicate_names():
            raise KeyError(
                f"no HO predicate named {name!r}; "
                f"registered: {ho_predicate_names()}"
            )
        return cls(kind="catalog", name=name)

    @classmethod
    def derived(cls, label: str, predicate: HOMustHear) -> "PredicateRef":
        return cls(
            kind="derived",
            name=label,
            must_hear=tuple(
                tuple(sorted(row)) for row in predicate.must_hear
            ),
        )

    def instantiate(self, n: int) -> HOPredicate:
        if self.kind == "catalog":
            return get_ho_predicate(self.name, n)
        assert self.must_hear is not None
        if len(self.must_hear) != n:
            raise ValueError(
                f"derived ref {self.name!r} records {len(self.must_hear)} "
                f"obligation rows, cannot instantiate at n={n}"
            )
        return HOMustHear(n, tuple(frozenset(row) for row in self.must_hear))

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"kind": self.kind, "name": self.name}
        if self.must_hear is not None:
            doc["must_hear"] = [list(row) for row in self.must_hear]
        return doc

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "PredicateRef":
        must_hear = doc.get("must_hear")
        return cls(
            kind=doc["kind"],
            name=doc["name"],
            must_hear=(
                None
                if must_hear is None
                else tuple(tuple(row) for row in must_hear)
            ),
        )


def _as_ref(ref: "PredicateRef | str") -> PredicateRef:
    return PredicateRef.catalog(ref) if isinstance(ref, str) else ref


# ---------------------------------------------------------------------------
# containment / equivalence


@dataclass(frozen=True)
class ContainmentResult:
    """Outcome of one bounded containment check ``A ⊆ B``."""

    a: PredicateRef
    b: PredicateRef
    n: int
    rounds: int
    holds: bool
    histories_checked: int
    witness: HOHistory | None
    bitset: bool

    def summary(self) -> str:
        verdict = "CONTAINED" if self.holds else "SEPARATED"
        return (
            f"{self.a.name} ⊆ {self.b.name} @ n={self.n}, "
            f"rounds≤{self.rounds}: {verdict} "
            f"({self.histories_checked} histories"
            f"{', packed' if self.bitset else ''})"
        )


def contains(
    a: "PredicateRef | str",
    b: "PredicateRef | str",
    *,
    n: int,
    rounds: int = 2,
    bitset: bool = True,
) -> ContainmentResult:
    """Exhaustively decide ``A ⊆ B`` over HO collections of ≤ ``rounds``.

    Prefix-closedness (which every catalog predicate satisfies) makes
    checking exactly-``rounds`` collections sufficient for all shorter
    ones.  With ``bitset=True`` and fast kernels on both sides the
    enumeration runs entirely in packed suspicion masks; the set path is
    the differential oracle (identical verdict, witness and count).
    """
    ref_a, ref_b = _as_ref(a), _as_ref(b)
    pa, pb = ref_a.instantiate(n), ref_b.instantiate(n)
    ka = pa.suspicion().packed()
    kb = pb.suspicion().packed()
    if bitset and ka.fast and kb.fast:
        checked = 0
        witness_packed: tuple[int, ...] | None = None

        def extend(packed: tuple[int, ...]) -> tuple[int, ...] | None:
            nonlocal checked
            if len(packed) == rounds:
                checked += 1
                if not kb.allows_history(packed):
                    return packed
                return None
            for rint in ka.admissible_round_ints(packed):
                found = extend(packed + (rint,))
                if found is not None:
                    return found
            return None

        witness_packed = extend(())
        witness = (
            None
            if witness_packed is None
            else from_suspicion(ka.domain.unpack_history(witness_packed), n)
        )
        return ContainmentResult(
            a=ref_a, b=ref_b, n=n, rounds=rounds,
            holds=witness is None, histories_checked=checked,
            witness=witness, bitset=True,
        )
    sub = implies_exhaustive(pa.suspicion(), pb.suspicion(), rounds=rounds)
    witness = (
        None
        if sub.counterexample is None
        else from_suspicion(sub.counterexample, n)
    )
    return ContainmentResult(
        a=ref_a, b=ref_b, n=n, rounds=rounds,
        holds=bool(sub.holds), histories_checked=sub.histories_checked,
        witness=witness, bitset=False,
    )


@dataclass(frozen=True)
class EquivalenceCertificate:
    """Both containment directions at one bounded ``(n, rounds)``."""

    forward: ContainmentResult  # A ⊆ B
    backward: ContainmentResult  # B ⊆ A

    @property
    def a(self) -> PredicateRef:
        return self.forward.a

    @property
    def b(self) -> PredicateRef:
        return self.forward.b

    @property
    def equivalent(self) -> bool:
        return self.forward.holds and self.backward.holds

    def summary(self) -> str:
        verdict = "EQUIVALENT" if self.equivalent else "NOT equivalent"
        return (
            f"{self.a.name} ≡ {self.b.name} @ n={self.forward.n}, "
            f"rounds≤{self.forward.rounds}: {verdict} "
            f"({self.forward.histories_checked}+"
            f"{self.backward.histories_checked} histories)"
        )

    def to_dict(self) -> dict[str, Any]:
        def direction(result: ContainmentResult) -> dict[str, Any]:
            return {
                "holds": result.holds,
                "histories_checked": result.histories_checked,
            }

        return {
            "format": EQUIVALENCE_FORMAT,
            "a": self.a.to_dict(),
            "b": self.b.to_dict(),
            "n": self.forward.n,
            "rounds": self.forward.rounds,
            "equivalent": self.equivalent,
            "forward": direction(self.forward),
            "backward": direction(self.backward),
        }


def equivalence(
    a: "PredicateRef | str",
    b: "PredicateRef | str",
    *,
    n: int,
    rounds: int = 2,
    bitset: bool = True,
) -> EquivalenceCertificate:
    """Decide ``A ≡ B`` at bounded ``(n, rounds)``, both directions."""
    return EquivalenceCertificate(
        forward=contains(a, b, n=n, rounds=rounds, bitset=bitset),
        backward=contains(b, a, n=n, rounds=rounds, bitset=bitset),
    )


def save_certificate(
    certificate: EquivalenceCertificate, path: "str | Path"
) -> None:
    Path(path).write_text(
        json.dumps(certificate.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_certificate(path: "str | Path") -> dict[str, Any]:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("format") != EQUIVALENCE_FORMAT:
        raise ValueError(
            f"not a {EQUIVALENCE_FORMAT} artifact: format={data.get('format')!r}"
        )
    return data


def replay_certificate(
    artifact: dict[str, Any], *, bitset: bool = True
) -> EquivalenceCertificate:
    """Re-run a loaded equivalence artifact and confirm its verdict.

    Raises:
        AssertionError: if any recorded direction, verdict or history count
        no longer matches — a predicate's semantics changed (that is the
        point of a golden corpus).
    """
    cert = equivalence(
        PredicateRef.from_dict(artifact["a"]),
        PredicateRef.from_dict(artifact["b"]),
        n=artifact["n"],
        rounds=artifact["rounds"],
        bitset=bitset,
    )
    for direction, result in (
        ("forward", cert.forward), ("backward", cert.backward),
    ):
        recorded = artifact[direction]
        if result.holds != recorded["holds"]:
            raise AssertionError(
                f"golden equivalence certificate diverged: {direction} "
                f"({result.a.name} ⊆ {result.b.name}) now "
                f"holds={result.holds}, recorded {recorded['holds']}"
            )
        if result.histories_checked != recorded["histories_checked"]:
            raise AssertionError(
                f"golden equivalence certificate diverged: {direction} "
                f"checked {result.histories_checked} histories, recorded "
                f"{recorded['histories_checked']} — the admissible space "
                "changed shape"
            )
    if cert.equivalent != artifact["equivalent"]:
        raise AssertionError(
            "golden equivalence certificate diverged: equivalent="
            f"{cert.equivalent}, recorded {artifact['equivalent']}"
        )
    return cert


# ---------------------------------------------------------------------------
# separation witnesses (through the conformance kit)


class _WitnessProcess(RoundProcess):
    """Trivial protocol for separation specs: decide the input in round 1.

    The separation invariant judges only the suspicion history, so the
    protocol exists purely to satisfy the executor; deciding immediately
    keeps ``prune_decided`` exploration sound and the traces tiny.
    """

    def emit(self, round_number: int) -> Any:
        return self.input_value

    def absorb(self, view) -> None:
        if self.decision is None:
            self.decide((self.pid, self.input_value))

    def copy(self) -> "_WitnessProcess":
        return self._shallow_copy()


def separation_spec(
    a: "PredicateRef | str", b: "PredicateRef | str", *, rounds: int = 2
) -> ConformanceSpec:
    """A dynamic spec whose one invariant separates the pair ``(A, B)``.

    Admissibility is A (the spec's model predicate is ``A.suspicion()``);
    the single invariant — named ``separates:<a>=><b>`` — asserts that the
    projected HO collection is also B-admissible.  A violation is exactly
    an A-admissible, B-rejected collection, and because the invariant name
    encodes the *pair*, :func:`repro.check.shrink.shrink` preserves the
    separating pair (not just "some failure") while minimizing.

    The spec is intentionally **not** registered: the registry is for
    protocol conformance claims that must stay green, while separation
    specs exist to fail.
    """
    ref_a, ref_b = _as_ref(a), _as_ref(b)
    invariant_name = f"separates:{ref_a.name}=>{ref_b.name}"

    def check(trace: ExecutionTrace, n: int) -> None:
        ho_history = from_suspicion(trace.d_history, n)
        assert ref_b.instantiate(n).allows(ho_history), (
            f"HO collection admissible under {ref_a.name} "
            f"but rejected by {ref_b.name}"
        )

    return ConformanceSpec(
        name=f"{SEPARATION_SPEC_PREFIX}{ref_a.name}=>{ref_b.name}",
        title=f"separation witness search: {ref_a.name} ⊈ {ref_b.name}",
        protocol=lambda n: make_protocol(_WitnessProcess, name="ho-witness"),
        predicate=lambda n: ref_a.instantiate(n).suspicion(),
        rounds=lambda n: rounds,
        invariants=(
            TraceInvariant(
                invariant_name,
                check,
                f"every {ref_a.name}-admissible HO collection is "
                f"{ref_b.name}-admissible",
            ),
        ),
        exhaustive_inputs=lambda n: [tuple(range(n))],
        sample_inputs=lambda n, rng: tuple(range(n)),
        notes="dynamic spec generated by repro.ho.certify; not registered",
    )


def find_separation(
    a: "PredicateRef | str",
    b: "PredicateRef | str",
    *,
    n: int,
    rounds: int = 2,
    bitset: bool = True,
) -> ShrinkResult | None:
    """A shrunk separation witness for ``A ⊈ B``, or ``None`` if contained.

    Runs ``explore()`` over the pair's :func:`separation_spec` (stopping at
    the first violation) and delta-debugs the witness down while keeping it
    A-admissible and keeping the *named* pair-invariant failing.  The
    result serializes through the standard
    ``rrfd-counterexample-v1`` pipeline
    (:func:`repro.check.shrink.save_counterexample`).
    """
    spec = separation_spec(a, b, rounds=rounds)
    result = explore(
        spec, n=n, rounds=rounds, max_violations=1, bitset=bitset
    )
    if result.ok:
        return None
    violation = result.violations[0]
    return shrink(
        spec,
        violation.inputs,
        violation.history,
        invariant=spec.invariants[0].name,
    )


def replay_separation(artifact: dict[str, Any]) -> ExecutionTrace:
    """Replay a separation ``rrfd-counterexample-v1`` artifact.

    The artifact's spec name (``ho-sep:<a>=><b>``) is parsed back into the
    catalog pair and the dynamic spec rebuilt; the standard counterexample
    replay then asserts the recorded invariant still fails with the
    recorded message.  Separation artifacts over *derived* predicates are
    not self-describing by name — replay those through
    :func:`separation_spec` with explicit refs instead.
    """
    spec_name = artifact["spec"]
    if not spec_name.startswith(SEPARATION_SPEC_PREFIX):
        raise ValueError(
            f"not a separation artifact: spec={spec_name!r} "
            f"(expected prefix {SEPARATION_SPEC_PREFIX!r})"
        )
    pair = spec_name[len(SEPARATION_SPEC_PREFIX):]
    a_name, sep, b_name = pair.partition("=>")
    if not sep:
        raise ValueError(f"malformed separation spec name {spec_name!r}")
    rounds = max(len(artifact["history"]), 1)
    spec = separation_spec(
        PredicateRef.catalog(a_name),
        PredicateRef.catalog(b_name),
        rounds=rounds,
    )
    return replay_counterexample(artifact, spec=spec)


# ---------------------------------------------------------------------------
# the standard suite (CLI `python -m repro ho --certify`, CI ho-smoke)


@dataclass(frozen=True)
class CertifySuiteReport:
    """Everything the standard certificate suite produced, replay-verified."""

    n: int
    rounds: int
    bitset: bool
    equivalences: tuple[EquivalenceCertificate, ...]
    containments: tuple[ContainmentResult, ...]
    separations: tuple[tuple[ShrinkResult, dict[str, Any]], ...]

    def summaries(self) -> list[str]:
        lines = [cert.summary() for cert in self.equivalences]
        lines += [result.summary() for result in self.containments]
        for shrunk, artifact in self.separations:
            lines.append(
                f"{artifact['spec']}: witness HO "
                f"{from_suspicion(tuple(shrunk.history), self.n)!r} "
                f"({shrunk.summary()})"
            )
        return lines


def certify_all(
    *,
    n: int = 3,
    rounds: int = 2,
    bitset: bool = True,
    save_dir: "str | Path | None" = None,
) -> CertifySuiteReport:
    """Run the standard certificate suite at bounded ``(n, rounds)``.

    The suite covers each certificate kind once, each end-to-end
    replay-verified before it is reported (or saved):

    - **equivalence** — the predicate *derived* from the fault-free
      :class:`~repro.substrates.messaging.chaos.FaultPlan` is exhaustively
      equivalent to the catalog's ``hear-all`` (the derivation is tight on
      a clean network);
    - **containments** — ``global-kernel ⊆ no-split`` (a common member of
      all HO sets intersects every pair) and ``uniform ⊆ no-split``;
    - **separation** — ``no-split ⊄ global-kernel``: pairwise intersection
      does not yield a global kernel at ``n ≥ 3``; the shrunk witness is
      the 3-cycle ``HO = ({1,2}, {0,2}, {0,1})``.

    ``save_dir`` writes the artifacts (``rrfd-equivalence-v1`` and
    ``rrfd-counterexample-v1`` JSON) for the golden corpus / CI upload.
    """
    from repro.ho.derive import derive
    from repro.substrates.messaging.chaos import FaultPlan

    clean = PredicateRef.derived("derived-clean", derive(FaultPlan(), n))
    cert = equivalence(clean, "hear-all", n=n, rounds=rounds, bitset=bitset)
    replay_certificate(cert.to_dict(), bitset=bitset)

    containments = tuple(
        contains(a, b, n=n, rounds=rounds, bitset=bitset)
        for a, b in (("global-kernel", "no-split"), ("uniform", "no-split"))
    )

    separations: list[tuple[ShrinkResult, dict[str, Any]]] = []
    if n >= 3:  # at n = 2 pairwise intersection IS a global kernel
        shrunk = find_separation(
            "no-split", "global-kernel", n=n, rounds=rounds, bitset=bitset
        )
        if shrunk is None:
            raise AssertionError(
                f"no-split ⊆ global-kernel unexpectedly holds at n={n}"
            )
        artifact = counterexample_to_dict(shrunk)
        replay_separation(artifact)
        separations.append((shrunk, artifact))

    if save_dir is not None:
        out = Path(save_dir)
        out.mkdir(parents=True, exist_ok=True)
        save_certificate(cert, out / "ho_equivalence_derived_clean.json")
        for shrunk, _ in separations:
            save_counterexample(
                shrunk, out / "ho_separation_no_split_global_kernel.json"
            )

    return CertifySuiteReport(
        n=n,
        rounds=rounds,
        bitset=bitset,
        equivalences=(cert,),
        containments=containments,
        separations=tuple(separations),
    )
