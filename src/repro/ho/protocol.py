"""UniformVoting: consensus from uniform Heard-Of rounds, no detectors.

The Heard-Of companion to the RRFD consensus protocols: Charron-Bost and
Schiper's *UniformVoting* solves consensus with **no failure detector at
all** — agreement strength comes entirely from the communication predicate
(:class:`repro.ho.model.HOUniformVoting`), mirroring the paper's central
point that the model, not the code, carries the synchrony.

The algorithm runs in two-round phases (1-based round ``r``):

- **odd rounds** (value exchange): broadcast ``x``; set ``x`` to the
  minimum value heard; vote for it iff every value heard was equal.
- **even rounds** (vote exchange): broadcast ``(x, vote)``; adopt any
  non-``None`` vote heard; decide ``v`` iff *every* message heard carried
  the vote ``v``.

Under the predicate's odd-round uniformity every process hears the *same*
set of senders, hence computes the same minimum and the same vote — so
after round 1 all ``x`` agree, after round 3 all votes agree, and round 4
decides: termination by round 4, for every process, with ``f`` processes
unheard per phase.  The even-round clause (``|⋃(S − HO)| ≤ f``) keeps the
vote exchange connected enough that a decided value is every survivor's
``x``, giving agreement even when phase 1 decides for only some.
"""

from __future__ import annotations

from typing import Any

from repro.core.algorithm import Protocol, RoundProcess, make_protocol
from repro.core.types import Round, RoundView

__all__ = ["UniformVotingProcess", "uniform_voting_protocol"]


class UniformVotingProcess(RoundProcess):
    """One process of UniformVoting (value rounds odd, vote rounds even)."""

    def __init__(self, pid: int, n: int, input_value: Any) -> None:
        super().__init__(pid, n, input_value)
        self.x: Any = input_value
        self.vote: Any = None

    def emit(self, round_number: Round) -> Any:
        if round_number % 2 == 1:
            return self.x
        return (self.x, self.vote)

    def absorb(self, view: RoundView) -> None:
        if self.decided or not view.messages:
            return
        if view.round % 2 == 1:
            values = list(view.messages.values())
            self.x = min(values)
            self.vote = self.x if all(v == self.x for v in values) else None
        else:
            votes = [vote for _, vote in view.messages.values()]
            cast = [vote for vote in votes if vote is not None]
            if cast:
                self.x = min(cast)
                if all(vote == cast[0] for vote in votes):
                    self.decide(cast[0])

    def copy(self) -> "UniformVotingProcess":
        return self._shallow_copy()


def uniform_voting_protocol() -> Protocol:
    """UniformVoting consensus under :class:`~repro.ho.model.HOUniformVoting`."""
    return make_protocol(UniformVotingProcess, name="uniform-voting")
