"""Derive Heard-Of predicates from elementary behavioral patterns.

Shimi, Hurault and Queinnec show that the HO predicates protocols actually
assume are *derivable* from elementary per-link behaviours — message loss,
crashes, partitions, timing budgets.  This repo already carries exactly that
vocabulary: a :class:`~repro.substrates.messaging.chaos.FaultPlan` is an
executable schedule of those patterns.  :func:`derive` compiles a plan into
the strongest :class:`~repro.ho.model.HOMustHear` obligation this analysis
can justify, and :func:`project_ho` runs the plan on a real
:class:`~repro.substrates.messaging.chaos.ChaosNetwork` and projects the
execution onto an HO collection — the soundness statement (every projected
collection satisfies the derived predicate, for every seed) is
property-tested in ``tests/ho`` and replayed by ``python -m repro ho
--derive``.

The derivation is deliberately **conservative** (sound, not tight): a link
is counted on only when *nothing* in the plan can silence or delay it —

- no loss (``drop_prob = 0``) and no timing hazard (``jitter = 0``,
  ``spike_prob = 0``: under a per-round deadline a delayed message is a
  missed message);
- neither endpoint has any crash window (a crashed sender never sends, a
  crashed receiver hears nothing);
- no partition window ever separates the endpoints
  (:func:`link_reliable` checks the groups statically, so the guarantee
  holds at whatever time a round happens to run).

Every process always hears itself (self-delivery is immediate and the HO
framework rule demands ``HO(i, r) ≠ ∅``), so ``must_hear[i]`` always
contains ``i`` — which also keeps the RRFD bridge total for crashed
receivers.
"""

from __future__ import annotations

from repro.ho.model import HOHistory, HOMustHear
from repro.substrates.events.simulator import EventSimulator
from repro.substrates.messaging.chaos import ChaosNetwork, FaultPlan
from repro.substrates.messaging.network import AdversarialDelays, Node

__all__ = [
    "link_reliable",
    "derive",
    "project_ho",
]


def link_reliable(plan: FaultPlan, src: int, dst: int, n: int) -> bool:
    """Whether the plan can never silence or delay the link ``src → dst``.

    ``src == dst`` is always reliable (self-delivery bypasses the fault
    pipeline).  Crash windows on either endpoint disqualify the link
    regardless of their timing — the derivation is time-free so it holds
    for rounds scheduled at any point of the plan.
    """
    if src == dst:
        return True
    if plan.crashes.get(src) or plan.crashes.get(dst):
        return False
    faults = plan.faults_for(src, dst)
    if faults.drop_prob > 0 or faults.jitter > 0 or faults.spike_prob > 0:
        return False
    for partition in plan.partitions:
        home = next((g for g in partition.groups if src in g), None)
        if home is None or dst not in home:
            return False
    return True


def derive(plan: FaultPlan, n: int) -> HOMustHear:
    """Compile a fault plan into its guaranteed-audibility HO predicate.

    ``must_hear[i] = {i} ∪ {j : link_reliable(plan, j, i)}`` — process
    ``i`` is guaranteed to hear every sender whose link to it the plan
    leaves untouched, plus itself.  Sound with respect to
    :func:`project_ho` for any seed (and any round schedule), not tight:
    a probabilistic drop that happens not to fire still widens the actual
    HO sets beyond the obligation.
    """
    must_hear = tuple(
        frozenset(
            src for src in range(n) if link_reliable(plan, src, dst, n)
        )
        for dst in range(n)
    )
    return HOMustHear(n, must_hear)


class _FloodNode(Node):
    """Round-stamped flooder: records which senders beat each deadline."""

    def __init__(self, pid: int, rounds: int, period: float) -> None:
        super().__init__(pid)
        self.period = period
        self.heard: list[set[int]] = [set() for _ in range(rounds)]

    def send_round(self, round_index: int) -> None:
        self.broadcast(("ho", round_index, self.pid))

    def on_message(self, src: int, payload: object) -> None:
        tag, round_index, sender = payload  # type: ignore[misc]
        assert tag == "ho"
        # A message landing after its round window closed is a miss — the
        # HO projection is deadline-driven, like the live service's rounds.
        deadline = (round_index + 1) * self.period
        if self.network is not None and self.network.sim.now < deadline:
            self.heard[round_index].add(sender)


def project_ho(
    plan: FaultPlan,
    n: int,
    rounds: int,
    *,
    seed: int = 0,
    period: float = 1.0,
    base_delay: float = 0.1,
) -> HOHistory:
    """Run ``plan`` on a chaos network and project the execution onto HO sets.

    Round ``r`` (0-based here, 1-based in the returned collection) has every
    non-crashed process broadcast a round-stamped message at ``r · period``;
    ``HO(i, r)`` is ``{i}`` plus every sender whose message reached ``i``
    before the deadline ``(r + 1) · period``.  Base latency is the constant
    ``base_delay`` (strictly less than ``period``), so only the plan's own
    faults — drops, jitter, spikes, partitions, crash windows — can make a
    process miss a sender.  Deterministic per ``(plan, seed)``.
    """
    if rounds < 1:
        raise ValueError(f"need at least one round, got {rounds}")
    if not 0 < base_delay < period:
        raise ValueError(
            f"need 0 < base_delay < period, got {base_delay}, {period}"
        )
    sim = EventSimulator()
    nodes = [_FloodNode(pid, rounds, period) for pid in range(n)]
    network = ChaosNetwork(
        nodes,
        sim,
        plan=plan,
        seed=seed,
        delays=AdversarialDelays(default=base_delay),
    )
    for round_index in range(rounds):
        for node in nodes:
            sim.schedule_at(
                round_index * period,
                lambda node=node, r=round_index: node.send_round(r),
            )
    network.run()
    return tuple(
        tuple(
            frozenset(nodes[pid].heard[round_index]) | {pid}
            for pid in range(n)
        )
        for round_index in range(rounds)
    )
