"""Command-line interface: explore the RRFD model zoo from a shell.

Subcommands::

    python -m repro models                      # the predicate catalog
    python -m repro run kset --n 8 --k 3        # run a protocol in a model
    python -m repro run consensus --n 5
    python -m repro run floodmin --n 6 --f 2 --k 2
    python -m repro lattice --n 3 --f 1 --k 2   # the submodel matrix
    python -m repro complex --n 3               # one-round protocol complexes
    python -m repro certify --n 3 --f 1 --rounds 1   # lower-bound search
    python -m repro chaos --n 6 --f 2 --drop 0.2     # overlay under fault injection
    python -m repro bench E1 E5 --workers 8 --json out/   # experiment sweeps
    python -m repro serve --n 4 --instances 5 --plan drop  # live asyncio service
    python -m repro load --instances 100 --plan ci --metrics  # live load run
    python -m repro check --spec kset --exhaustive   # conformance certification
    python -m repro check --spec floodset --fuzz 500 --n 6
    python -m repro ho --list                        # the HO predicate catalog
    python -m repro ho --derive ci --n 3             # FaultPlan -> HO predicate
    python -m repro ho --certify --n 3 --save out/   # equivalence/separation

All commands are deterministic given ``--seed``; ``bench`` results are
deterministic for every worker count by construction.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.complexes import consensus_disconnection
from repro.analysis.enumeration import enumerate_executions
from repro.analysis.lattice import compute_lattice, standard_catalog
from repro.analysis.solvability import kset_solvable
from repro.core.audit import ExecutionAuditor
from repro.core.detector import RoundByRoundFaultDetector
from repro.core.predicates import (
    AsyncMessagePassing,
    AtomicSnapshot,
    CrashSync,
    KSetDetector,
    SemiSyncEquality,
    SharedMemorySWMR,
)
from repro.protocols.floodset import floodmin_protocol, rounds_needed
from repro.protocols.kset import kset_protocol
from repro.util.render import render_trace

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Round-by-Round Fault Detectors (Gafni, PODC 1998) — "
        "unified models of distributed computing, executable.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the predicate catalog")

    run = sub.add_parser("run", help="run a protocol under a model")
    run.add_argument("protocol", choices=["kset", "consensus", "floodmin"])
    run.add_argument("--n", type=int, default=6, help="number of processes")
    run.add_argument("--k", type=int, default=2, help="agreement parameter k")
    run.add_argument("--f", type=int, default=1, help="fault budget (floodmin)")
    run.add_argument("--seed", type=int, default=0)

    lattice = sub.add_parser("lattice", help="print the submodel matrix")
    lattice.add_argument("--n", type=int, default=3)
    lattice.add_argument("--f", type=int, default=1)
    lattice.add_argument("--k", type=int, default=2)
    lattice.add_argument("--t", type=int, default=1)
    lattice.add_argument("--rounds", type=int, default=2)

    complex_ = sub.add_parser(
        "complex", help="one-round protocol complexes of the catalog"
    )
    complex_.add_argument("--n", type=int, default=3)
    complex_.add_argument("--f", type=int, default=1)

    certify = sub.add_parser(
        "certify", help="exhaustive k-set solvability search (tiny n!)"
    )
    certify.add_argument("--n", type=int, default=3)
    certify.add_argument("--f", type=int, default=1)
    certify.add_argument("--k", type=int, default=1)
    certify.add_argument("--rounds", type=int, default=1)
    certify.add_argument(
        "--domain", type=int, default=None,
        help="input domain size (default k+1)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="run the reliable round overlay under message-level fault injection",
    )
    chaos.add_argument("--n", type=int, default=6)
    chaos.add_argument("--f", type=int, default=2)
    chaos.add_argument("--rounds", type=int, default=5)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--drop", type=float, default=0.2,
                       help="per-message drop probability")
    chaos.add_argument("--dup", type=float, default=0.05,
                       help="per-message duplication probability")
    chaos.add_argument("--jitter", type=float, default=5.0,
                       help="extra uniform latency (reorders messages)")
    chaos.add_argument("--crashes", type=int, default=0,
                       help="crash this many processes at staggered times")
    chaos.add_argument("--recover-after", type=float, default=None,
                       help="crashed processes come back after this long")
    chaos.add_argument("--unreliable", action="store_true",
                       help="plain overlay (no ack/retransmit) — expect a stall")
    chaos.add_argument("--metrics", action="store_true", dest="show_metrics",
                       help="collect and print the unified metrics registry")
    chaos.add_argument("--trace-out", metavar="PATH", default=None,
                       help="stream structured events (rrfd-events-v1 JSONL) "
                       "to PATH")

    bench = sub.add_parser(
        "bench",
        help="run declarative experiment sweeps; emit BENCH_*.json artifacts",
    )
    bench.add_argument(
        "ids", nargs="*", metavar="ID",
        help="experiment ids (E1, E5, ...); a base id selects its variants "
        "(E6 -> E6, E6b); none selects all",
    )
    bench.add_argument("--list", action="store_true", dest="list_experiments",
                       help="list registered experiments and exit")
    bench.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: RRFD_BENCH_WORKERS or 1)")
    bench.add_argument("--samples", type=int, default=None,
                       help="override each experiment's per-cell sample count")
    bench.add_argument("--json", dest="json_dir", default=None, metavar="DIR",
                       help="write BENCH_<id>.json per experiment plus a "
                       "merged BENCH_SUMMARY.json to DIR")
    bench.add_argument("--speedup", action="store_true",
                       help="also run serially, verify identical results, and "
                       "record the parallel speedup in the artifacts")
    bench.add_argument("--quiet", action="store_true",
                       help="suppress the report tables (artifacts only)")
    bench.add_argument("--id", action="append", dest="id_flags", metavar="ID",
                       default=None,
                       help="experiment id (repeatable; merged with the "
                       "positional ids)")
    bench.add_argument("--trace-out", metavar="PATH", default=None,
                       help="write structured events (rrfd-events-v1 JSONL) "
                       "to PATH; the deterministic payload is bit-identical "
                       "across worker counts")
    bench.add_argument("--metrics", action="store_true", dest="show_metrics",
                       help="collect the unified metrics registry per "
                       "experiment, print it, and embed it in the BENCH "
                       "artifacts")

    serve = sub.add_parser(
        "serve",
        help="run live protocol instances on the asyncio service runtime "
        "(real localhost sockets) and audit the projected traces",
    )
    serve.add_argument("--n", type=int, default=4, help="live processes")
    serve.add_argument("--f", type=int, default=1, help="fault budget")
    serve.add_argument("--protocol", default="consensus",
                       choices=("consensus", "kset", "adopt-commit", "mix"))
    serve.add_argument("--instances", type=int, default=1,
                       help="concurrent protocol instances")
    serve.add_argument("--k", type=int, default=1, help="k for kset")
    serve.add_argument("--plan", default="none",
                       help="named fault plan: none|drop|partition|ci|chaos")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--deadline", type=float, default=2.0,
                       help="per-round deadline in seconds before the round "
                       "degrades (advance with suspected set, or park)")
    serve.add_argument("--metrics", action="store_true", dest="show_metrics",
                       help="collect and print the unified metrics registry "
                       "(service.* counters + queue high-water gauge)")
    serve.add_argument("--trace-out", metavar="PATH", default=None,
                       help="stream structured events (rrfd-events-v1 JSONL) "
                       "to PATH")

    load = sub.add_parser(
        "load",
        help="load-generate many live instances under a named chaos plan; "
        "report throughput/latency/robustness",
    )
    load.add_argument("--n", type=int, default=4)
    load.add_argument("--f", type=int, default=1)
    load.add_argument("--instances", type=int, default=100)
    load.add_argument("--protocol", default="mix",
                      choices=("consensus", "kset", "adopt-commit", "mix"))
    load.add_argument("--plan", default="none",
                      help="named fault plan: none|drop|partition|ci|chaos")
    load.add_argument("--seed", type=int, default=0)
    load.add_argument("--deadline", type=float, default=2.0,
                      help="per-round deadline in seconds")
    load.add_argument("--json", dest="json_path", metavar="PATH", default=None,
                      help="write the run summary as JSON to PATH")
    load.add_argument("--metrics", action="store_true", dest="show_metrics",
                      help="collect and print the unified metrics registry")
    load.add_argument("--trace-out", metavar="PATH", default=None,
                      help="stream structured events (rrfd-events-v1 JSONL) "
                      "to PATH")

    check = sub.add_parser(
        "check",
        help="conformance-check protocols against their model predicates",
    )
    check.add_argument("--spec", action="append", dest="specs", metavar="NAME",
                       help="spec to check (repeatable; default: all)")
    check.add_argument("--list", action="store_true", dest="list_specs",
                       help="list registered conformance specs and exit")
    mode = check.add_mutually_exclusive_group()
    mode.add_argument("--exhaustive", action="store_true",
                      help="enumerate EVERY admissible D-history (small n)")
    mode.add_argument("--fuzz", type=int, default=None, metavar="N",
                      help="run N randomized conformance samples instead")
    check.add_argument("--n", type=int, default=None,
                       help="system size (default: per-spec)")
    check.add_argument("--rounds", type=int, default=None,
                       help="history depth (default: per-spec)")
    check.add_argument("--workers", type=int, default=1,
                       help="parallelize the exhaustive search")
    check.add_argument("--scheduler", choices=("steal", "static"),
                       default=None,
                       help="parallel scheduler: work-stealing task pool "
                       "(steal, default for workers>1) or the legacy "
                       "static round-1 frontier split")
    check.add_argument("--progress", action="store_true",
                       help="emit a periodic check.progress heartbeat "
                       "(obs event + stderr line) during exhaustive runs")
    check.add_argument("--bfs", action="store_true",
                       help="disk-backed breadth-first certification: "
                       "frontier segments spill to --checkpoint and the "
                       "run can be resumed")
    check.add_argument("--checkpoint", metavar="DIR", default=None,
                       help="checkpoint directory for --bfs (default: a "
                       "temporary directory, discarded at exit)")
    check.add_argument("--resume", action="store_true",
                       help="resume an interrupted --bfs certification "
                       "from --checkpoint")
    check.add_argument("--segment-size", type=int, default=4096,
                       metavar="N",
                       help="--bfs frontier prefixes per on-disk segment")
    check.add_argument("--max-tasks", type=int, default=None, metavar="N",
                       help="stop a --bfs run after N tasks this "
                       "invocation (checkpointed partial run; resume "
                       "later with --resume; a partial sitting exits "
                       "with code 3, never 0)")
    check.add_argument("--prune-decided", action="store_true",
                       help="stop extending histories once everyone decided")
    check.add_argument("--engine", choices=("incremental", "replay"),
                       default="incremental",
                       help="exhaustive engine: fork executors along the DFS "
                       "(incremental, default) or replay each history from "
                       "round 1")
    check.add_argument("--no-symmetry", action="store_true",
                       help="disable symmetry reduction (on by default for "
                       "specs that declare a symmetry grade; disable for "
                       "full-strength per-history certification)")
    check.add_argument("--no-bitset", action="store_true",
                       help="force the set-based reference path instead of "
                       "the packed integer-bitmask kernel (same verdicts; "
                       "used for differential certification)")
    check.add_argument("--seed", type=int, default=0, help="fuzz seed")
    check.add_argument("--shrink", action="store_true",
                       help="delta-debug each violation to a minimal "
                       "counterexample")
    check.add_argument("--save", metavar="DIR", default=None,
                       help="write shrunk counterexamples as "
                       "rrfd-counterexample-v1 JSON under DIR")
    check.add_argument("--trace-out", metavar="PATH", default=None,
                       help="write structured events (rrfd-events-v1 JSONL) "
                       "to PATH")
    check.add_argument("--metrics", action="store_true", dest="show_metrics",
                       help="collect and print the unified metrics registry")

    ho = sub.add_parser(
        "ho",
        help="Heard-Of model: derive predicates from fault plans, certify "
             "equivalence/separation between predicates",
    )
    ho.add_argument("--list", action="store_true", dest="list_predicates",
                    help="list the HO predicate catalog and HO specs")
    ho.add_argument("--derive", metavar="PLAN", default=None,
                    help="derive the HO predicate a named chaos plan "
                    "guarantees (none/drop/partition/ci/chaos), then check "
                    "it against projected executions")
    ho.add_argument("--certify", action="store_true",
                    help="run the standard certificate suite: exhaustive "
                    "equivalence + containments + a shrunk, replay-verified "
                    "separation witness")
    ho.add_argument("--n", type=int, default=3, help="system size")
    ho.add_argument("--rounds", type=int, default=2,
                    help="certification depth (rounds per history)")
    ho.add_argument("--seeds", type=int, default=20,
                    help="projected executions per --derive soundness check")
    ho.add_argument("--no-bitset", action="store_true",
                    help="use the set-based reference path instead of the "
                    "packed kernels (same verdicts)")
    ho.add_argument("--save", metavar="DIR", default=None,
                    help="write certificates/witnesses as JSON under DIR")

    cc = sub.add_parser(
        "cc",
        help="communication-closure compiler: compile async protocols onto "
             "rounds, certify recorded async traces, project them to round "
             "traces",
    )
    ccsub = cc.add_subparsers(dest="cc_command", required=True)

    cc_compile = ccsub.add_parser(
        "compile",
        help="compile a cc catalog protocol and smoke-run it on the "
             "reliable overlay",
    )
    cc_compile.add_argument("protocol", nargs="?", default=None,
                            help="cc catalog name (cc-consensus | cc-kset | "
                            "cc-adopt-commit | cc-echo-min)")
    cc_compile.add_argument("--list", action="store_true", dest="list_catalog",
                            help="list the cc catalog and cc-* specs, then exit")
    cc_compile.add_argument("--n", type=int, default=4)
    cc_compile.add_argument("--f", type=int, default=1)
    cc_compile.add_argument("--k", type=int, default=1)
    cc_compile.add_argument("--seed", type=int, default=0)
    cc_compile.add_argument("--plan", choices=("none", "drop", "ci"),
                            default="none",
                            help="simulated fault plan for the smoke run")

    cc_certify = ccsub.add_parser(
        "certify",
        help="record an async execution (simulated or live) and certify it "
             "communication-closed; exit 1 on a violation",
    )
    cc_certify.add_argument("protocol", nargs="?", default=None,
                            help="cc catalog name to run and certify "
                            "(omit with --trace)")
    cc_certify.add_argument("--trace", metavar="PATH", default=None,
                            help="certify a saved repro.cc.trace/1 JSON "
                            "document instead of running")
    cc_certify.add_argument("--live", action="store_true",
                            help="record on the live asyncio service instead "
                            "of the simulated overlay")
    cc_certify.add_argument("--n", type=int, default=4)
    cc_certify.add_argument("--f", type=int, default=1)
    cc_certify.add_argument("--k", type=int, default=1)
    cc_certify.add_argument("--seed", type=int, default=0)
    cc_certify.add_argument("--plan", choices=("none", "drop", "ci"),
                            default="none",
                            help="fault plan (sim-scaled, or the service "
                            "preset under --live)")
    cc_certify.add_argument("--strict", action="store_true",
                            help="also report discarded late crossings as "
                            "violations (crossing-free runs only)")
    cc_certify.add_argument("--save", metavar="DIR", default=None,
                            help="write the recorded trace as JSON under DIR")

    cc_project = ccsub.add_parser(
        "project",
        help="certify a recorded trace and project it onto a round "
             "ExecutionTrace; optionally re-check a spec's invariants on it",
    )
    cc_project.add_argument("--trace", metavar="PATH", required=True,
                            help="saved repro.cc.trace/1 JSON document")
    cc_project.add_argument("--spec", metavar="NAME", default=None,
                            help="run this conformance spec's invariants "
                            "against the projected trace")
    return parser


def _cmd_models(args: argparse.Namespace) -> int:
    print("The RRFD predicate catalog (Sections 2, 3, 5):\n")
    for name, predicate in standard_catalog(5, 2, 3, 3):
        print(f"  {name:<12} {predicate.describe()}")
    print("\nA model is a predicate over the suspicion sets D(i, r); the")
    print("detector is the adversary.  See `repro lattice` for how they nest.")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    n, seed = args.n, args.seed
    if args.protocol == "kset":
        model = KSetDetector(n, args.k)
        protocol, max_rounds = kset_protocol(), 1
    elif args.protocol == "consensus":
        model = SemiSyncEquality(n)
        protocol, max_rounds = kset_protocol(), 1
    else:
        model = CrashSync(n, args.f)
        protocol = floodmin_protocol(args.f, args.k)
        max_rounds = rounds_needed(args.f, args.k)
    rrfd = RoundByRoundFaultDetector(model, seed=seed)
    trace = rrfd.run(protocol, inputs=list(range(n)), max_rounds=max_rounds)
    print(f"model:     {model.describe()}")
    print(f"protocol:  {args.protocol}  (inputs 0..{n - 1}, seed {seed})")
    print(render_trace(trace))
    return 0


def _cmd_lattice(args: argparse.Namespace) -> int:
    report = compute_lattice(
        args.n, f=args.f, k=args.k, t=args.t, rounds=args.rounds
    )
    print(report.format())
    print("\nY at (row, col): row is a submodel of col (P_row ⇒ P_col).")
    return 0


def _cmd_complex(args: argparse.Namespace) -> int:
    n, f = args.n, args.f
    catalog = [
        ("async-mp", AsyncMessagePassing(n, f)),
        ("swmr", SharedMemorySWMR(n, f)),
        ("snapshot", AtomicSnapshot(n, f)),
        ("kset(2)", KSetDetector(n, 2)),
        ("kset(1)", KSetDetector(n, 1)),
    ]
    print(f"{'model':<10} {'facets':>7} {'vertices':>9} {'components':>11} "
          f"{'χ':>4}  one-round consensus")
    for name, predicate in catalog:
        s = consensus_disconnection(predicate)
        verdict = "impossible" if s["connected"] else "solvable"
        print(f"{name:<10} {s['facets']:>7} {s['vertices']:>9} "
              f"{s['components']:>11} {s['euler']:>4}  {verdict}")
    return 0


def _cmd_certify(args: argparse.Namespace) -> int:
    domain = list(range(args.domain if args.domain else args.k + 1))
    print(
        f"enumerating executions: n={args.n}, f={args.f}, rounds={args.rounds}, "
        f"inputs from {domain} ..."
    )
    executions = enumerate_executions(
        args.n, args.f, args.rounds, input_domain=domain
    )
    result = kset_solvable(executions, args.k)
    print(result)
    if result.solvable:
        print("a decision map exists (the task IS solvable at this round count)")
    else:
        print("no decision map exists — a finite certificate of the lower bound")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.core.algorithm import FullInformationProcess, make_protocol
    from repro.substrates.events import EventSimulator
    from repro.substrates.messaging.chaos import (
        ChaosNetwork, CrashWindow, FaultPlan, LinkFaults,
    )
    from repro.substrates.messaging.reliable import run_reliable_round_overlay
    from repro.substrates.messaging.rounds import RoundOverlayNode

    sink = open(args.trace_out, "w") if args.trace_out else None
    tracer = obs.Tracer(sink=sink) if sink is not None else None
    metrics = obs.Metrics() if args.show_metrics else None
    n, f = args.n, args.f
    faults = LinkFaults(drop_prob=args.drop, dup_prob=args.dup, jitter=args.jitter)
    crashes = {
        pid: [CrashWindow(
            5.0 * (pid + 1),
            None if args.recover_after is None
            else 5.0 * (pid + 1) + args.recover_after,
        )]
        for pid in range(args.crashes)
    }
    plan = FaultPlan(default=faults, crashes=crashes)
    protocol = make_protocol(FullInformationProcess)
    inputs = list(range(n))

    with obs.tracing(tracer), obs.collecting(metrics):
        if args.unreliable:
            # The plain overlay has no retransmission; over a lossy network
            # the expected outcome is a stall, which the watchdog attributes
            # below.
            sim = EventSimulator()
            nodes = [
                RoundOverlayNode(
                    pid, n, f, protocol.spawn(pid, n, inputs[pid]),
                    max_rounds=args.rounds, stop_on_decision=False,
                )
                for pid in range(n)
            ]
            network = ChaosNetwork(nodes, sim, plan=plan, seed=args.seed)
            network.run(max_events=500_000)
            report = ExecutionAuditor(n, f).audit_overlay(nodes, network)
            retransmissions = 0
            if metrics is not None:
                network.stats.publish(metrics, "chaos")
        else:
            result = run_reliable_round_overlay(
                protocol, inputs, f,
                max_rounds=args.rounds, seed=args.seed, plan=plan,
                stop_on_decision=False, enforce_crash_budget=False,
                on_stall="report",
            )
            network, report = result.network, result.audit
            retransmissions = result.total_retransmissions

    stats = network.stats
    overlay = "plain (no retransmit)" if args.unreliable else "reliable (ack+retry)"
    print(f"overlay:   {overlay}")
    print(f"plan:      drop={args.drop} dup={args.dup} jitter={args.jitter} "
          f"crashes={args.crashes}"
          + (f" recover_after={args.recover_after}" if args.recover_after else ""))
    print(f"traffic:   sent={stats.messages_sent} delivered={stats.messages_delivered} "
          f"dropped={stats.messages_dropped_chaos} dup={stats.messages_duplicated} "
          f"reordered={stats.messages_reordered} retransmitted={retransmissions}")
    print(report.summary())
    for violation in report.violations:
        print(f"  {violation}")
    if metrics is not None:
        print("metrics:")
        print(obs.format_metrics(metrics))
    if tracer is not None:
        sink.close()
        print(f"wrote {args.trace_out} ({tracer.emitted} events)")
    if report.stall is not None and report.stall.stalled:
        print(report.stall)
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.harness import (
        experiment_tables,
        render_table,
        resolve_workers,
        run_experiment,
        run_with_speedup,
    )
    from repro.harness.artifacts import (
        experiment_to_doc,
        write_experiment,
        write_summary,
    )
    from repro.harness.registry import load_experiments, select

    registry = load_experiments()
    if args.list_experiments:
        for exp in registry.values():
            cells = len(exp.grid.cells)
            print(f"  {exp.id:<5} {cells:>3} cells x {exp.samples:>5} samples  "
                  f"{exp.title}")
        return 0
    ids = list(args.ids) + list(args.id_flags or ())
    experiments = select(registry, ids)
    workers = resolve_workers(args.workers)
    # One tracer spans the whole bench run, streaming to the events file as
    # records are emitted (the sink sees every record; the in-memory ring
    # may drop old ones).  The metrics registry is fresh per experiment so
    # each BENCH artifact embeds only its own counters.
    sink = open(args.trace_out, "w") if args.trace_out else None
    tracer = obs.Tracer(sink=sink) if sink is not None else None
    docs = []
    try:
        with obs.tracing(tracer):
            for exp in experiments:
                metrics = obs.Metrics() if args.show_metrics else None
                with obs.collecting(metrics):
                    if args.speedup:
                        result = run_with_speedup(
                            exp, samples=args.samples, workers=workers
                        )
                    else:
                        result = run_experiment(
                            exp, samples=args.samples, workers=workers
                        )
                if not args.quiet:
                    for title, header, rows in experiment_tables(exp, result):
                        print(render_table(title, header, rows))
                        print()
                line = (f"[{exp.id}] {len(result.cells)} cells x "
                        f"{result.samples} samples "
                        f"in {result.wall_time:.2f}s "
                        f"({result.workers} worker(s))")
                speedup = result.meta.get("speedup")
                if speedup and speedup.get("speedup") is not None:
                    line += (f"; speedup {speedup['speedup']:.2f}x over serial "
                             f"{speedup['serial_wall_time_s']:.2f}s")
                print(line)
                if metrics is not None and not args.quiet:
                    print(f"[{exp.id}] metrics:")
                    print(obs.format_metrics(metrics))
                if args.json_dir:
                    path = write_experiment(result, args.json_dir)
                    docs.append(experiment_to_doc(result))
                    print(f"  wrote {path}")
    finally:
        if sink is not None:
            sink.close()
    if args.json_dir and docs:
        path = write_summary(docs, args.json_dir)
        print(f"  wrote {path}")
    if tracer is not None:
        print(f"  wrote {args.trace_out} ({tracer.emitted} events)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.service import (
        InstanceOutcome,
        ServiceConfig,
        audit_instance,
        named_plan,
        run_service,
    )
    from repro.service.loadgen import make_specs

    sink = open(args.trace_out, "w") if args.trace_out else None
    tracer = obs.Tracer(sink=sink) if sink is not None else None
    metrics = obs.Metrics() if args.show_metrics else None
    config = ServiceConfig(
        n=args.n, f=args.f, plan=named_plan(args.plan, args.n),
        seed=args.seed, round_deadline=args.deadline,
    )
    specs = make_specs(args.instances, args.n, args.protocol, args.k, args.seed)
    with obs.tracing(tracer), obs.collecting(metrics):
        stats, degradations, results = run_service(config, specs)
        if metrics is not None:
            stats.publish(metrics)
    print(f"service:   n={args.n} f={args.f} plan={args.plan} "
          f"deadline={args.deadline}s")
    violations = 0
    for result in results:
        report = audit_instance(result)
        violations += len(report.violations)
        decisions = sorted({repr(d) for d in result.decisions
                            if d is not None})
        print(f"  {result.spec.name:<20} {result.outcome.value:<9} "
              f"latency={result.latency:.3f}s "
              f"decisions={decisions} "
              f"audit={'OK' if report.ok else 'VIOLATIONS'}")
        for violation in report.violations:
            print(f"    {violation}")
    if len(degradations):
        print(f"degraded:  {degradations.summary()}")
    print(f"traffic:   frames={stats.frames_sent} "
          f"retries={stats.retries} retransmits={stats.retransmissions} "
          f"reconnects={stats.reconnects} "
          f"queue_high_water={stats.queue_high_water}")
    if metrics is not None:
        print("metrics:")
        print(obs.format_metrics(metrics))
    if tracer is not None:
        sink.close()
        print(f"wrote {args.trace_out} ({tracer.emitted} events)")
    parked = sum(1 for r in results if r.outcome is InstanceOutcome.PARKED)
    if violations:
        return 1
    return 0 if parked == 0 else 2


def _cmd_load(args: argparse.Namespace) -> int:
    import json

    from repro import obs
    from repro.service import run_load

    sink = open(args.trace_out, "w") if args.trace_out else None
    tracer = obs.Tracer(sink=sink) if sink is not None else None
    metrics = obs.Metrics() if args.show_metrics else None
    with obs.tracing(tracer), obs.collecting(metrics):
        result = run_load(
            n=args.n, f=args.f, instances=args.instances,
            protocol=args.protocol, plan=args.plan, seed=args.seed,
            round_deadline=args.deadline,
        )
        if metrics is not None:
            result.stats.publish(metrics)
    summary = result.summary()
    print(f"load:      n={summary['n']} f={summary['f']} "
          f"plan={summary['plan']} protocol={summary['protocol']}")
    print(f"outcomes:  {summary['instances']} instances — "
          f"{summary['decided']} decided, {summary['degraded']} degraded, "
          f"{summary['parked']} parked ({summary['degradation_events']} "
          f"degradation events)")
    print(f"safety:    {summary['violations']} audit violations")
    print(f"perf:      {summary['throughput']:.1f} instances/s, "
          f"latency p50={summary['latency_p50']:.3f}s "
          f"p95={summary['latency_p95']:.3f}s "
          f"({summary['duration']:.2f}s wall)")
    print(f"transport: retries={summary['retries']} "
          f"retransmits={summary['retransmissions']} "
          f"reconnects={summary['reconnects']} "
          f"queue_high_water={summary['queue_high_water']}")
    if args.json_path:
        with open(args.json_path, "w") as out:
            json.dump(summary, out, indent=2, sort_keys=True)
        print(f"wrote {args.json_path}")
    if metrics is not None:
        print("metrics:")
        print(obs.format_metrics(metrics))
    if tracer is not None:
        sink.close()
        print(f"wrote {args.trace_out} ({tracer.emitted} events)")
    return 1 if summary["violations"] else 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.check import (
        explore, fuzz, get_spec, save_counterexample, shrink, spec_names,
    )

    if args.list_specs:
        for name in spec_names():
            spec = get_spec(name)
            mode = "exhaustive+fuzz" if spec.supports_exhaustive else "fuzz-only"
            print(f"  {name:<20} [{mode}] {spec.title}")
        return 0

    sink = open(args.trace_out, "w") if args.trace_out else None
    tracer = obs.Tracer(sink=sink) if sink is not None else None
    metrics = obs.Metrics() if args.show_metrics else None
    names = args.specs or spec_names()
    exit_code = 0
    partial_specs: list[str] = []
    for name in names:
        spec = get_spec(name)
        with obs.tracing(tracer), obs.collecting(metrics):
            if args.fuzz is not None or not spec.supports_exhaustive:
                if args.exhaustive and not spec.supports_exhaustive:
                    print(f"{name}: scheduler-driven — falling back to fuzz")
                result = fuzz(
                    spec, args.fuzz if args.fuzz is not None else 200,
                    n=args.n, rounds=args.rounds, seed=args.seed,
                )
            elif args.bfs or args.resume:
                from repro.check import explore_bfs

                result = explore_bfs(
                    spec, n=args.n, rounds=args.rounds,
                    prune_decided=args.prune_decided, workers=args.workers,
                    checkpoint=args.checkpoint, resume=args.resume,
                    segment_size=args.segment_size,
                    max_tasks=args.max_tasks, progress=args.progress,
                )
                if result.partial:
                    # A partial sitting proves nothing about the unexplored
                    # frontier — it must never exit 0 as if certification
                    # completed (exit 3 below, unless violations win with 1).
                    partial_specs.append(name)
                    print(f"{name}: partial — "
                          f"{result.scale['tasks_done']} task(s) done, "
                          f"{result.scale['tasks_pending']} pending; "
                          f"resume with --resume --checkpoint "
                          f"{result.scale['checkpoint']}")
            else:
                # --exhaustive is also the default mode for capable specs.
                result = explore(
                    spec, n=args.n, rounds=args.rounds,
                    prune_decided=args.prune_decided, workers=args.workers,
                    engine=args.engine, symmetry=not args.no_symmetry,
                    bitset=not args.no_bitset, scheduler=args.scheduler,
                    progress=args.progress,
                )
        print(result.summary())
        for violation in result.violations[:10]:
            print(f"  {violation}")
        if len(result.violations) > 10:
            print(f"  ... and {len(result.violations) - 10} more")
        if result.violations:
            exit_code = 1
        if (args.shrink or args.save) and result.violations:
            seen: set[tuple[str, str]] = set()
            for violation in result.violations:
                key = (violation.failures[0].invariant, "")
                if key in seen or not violation.history:
                    continue
                seen.add(key)
                shrunk = shrink(spec, violation.inputs, violation.history)
                print(f"  shrunk: {shrunk.summary()}")
                print(f"    inputs:  {shrunk.inputs!r}")
                print(f"    history: {shrunk.history!r}")
                if args.save:
                    from pathlib import Path

                    out = Path(args.save)
                    out.mkdir(parents=True, exist_ok=True)
                    path = out / f"{spec.name}_{shrunk.invariant}.json"
                    save_counterexample(shrunk, path)
                    print(f"    wrote {path}")
    if metrics is not None:
        print("metrics:")
        print(obs.format_metrics(metrics))
    if tracer is not None:
        sink.close()
        print(f"wrote {args.trace_out} ({tracer.emitted} events)")
    if exit_code == 0 and partial_specs:
        return 3  # partial: certification incomplete, resume to continue
    return exit_code


def _cmd_ho(args: argparse.Namespace) -> int:
    from repro import ho
    from repro.service.loadgen import named_plan

    n = args.n
    bitset = not args.no_bitset
    did_something = False

    if args.list_predicates:
        did_something = True
        print(f"HO predicate catalog (at n={n}):\n")
        for name in ho.ho_predicate_names():
            predicate = ho.get_ho_predicate(name, n)
            fast = "packed" if predicate.suspicion().packed().fast else "set"
            print(f"  {name:<16} [{fast}] {predicate.describe()}")
        print("\nRegistered HO conformance specs:\n")
        from repro.check import get_spec, spec_names

        for name in spec_names():
            if name.startswith("ho-"):
                print(f"  {name:<20} {get_spec(name).title}")

    if args.derive is not None:
        did_something = True
        plan = named_plan(args.derive, n)
        predicate = ho.derive(plan, n)
        print(f"plan {args.derive!r} at n={n} derives: {predicate.describe()}")
        for pid, obliged in enumerate(predicate.must_hear):
            print(f"  HO({pid}, r) ⊇ {set(sorted(obliged))}")
        rounds = max(args.rounds, 1)
        for seed in range(args.seeds):
            collection = ho.project_ho(plan, n, rounds, seed=seed)
            if not predicate.allows(collection):
                print(f"  UNSOUND at seed={seed}: projected {collection!r}")
                return 1
        print(f"  sound on {args.seeds} projected executions "
              f"({rounds} rounds each)")

    if args.certify:
        did_something = True
        report = ho.certify_all(
            n=n, rounds=args.rounds, bitset=bitset, save_dir=args.save,
        )
        for line in report.summaries():
            print(line)
        print(f"all certificates replay-verified "
              f"({'packed' if bitset else 'set'} path)")
        if args.save:
            print(f"wrote artifacts under {args.save}")

    if not did_something:
        print("nothing to do: pass --list, --derive PLAN, and/or --certify")
        return 2
    return 0


def _cc_sim_plan(name: str):
    """Sim-scaled fault plans for the cc commands (sim time, not seconds)."""
    from repro.substrates.messaging.chaos import FaultPlan, LinkFaults

    if name == "none":
        return FaultPlan()
    if name == "drop":
        return FaultPlan(default=LinkFaults(drop_prob=0.2))
    return FaultPlan(  # "ci": loss + duplication + reordering jitter
        default=LinkFaults(drop_prob=0.2, dup_prob=0.1, jitter=4.0)
    )


def _cc_inputs(n: int, seed: int) -> tuple[int, ...]:
    import random as _random

    rng = _random.Random(seed)
    return tuple(rng.randrange(n) for _ in range(n))


def _cc_record(args: argparse.Namespace):
    """Run the named cc protocol per the CLI flags; (result, trace)."""
    from repro.cc import record_reliable_run, resolve_cc_protocol

    protocol, rounds = resolve_cc_protocol(args.protocol, f=args.f, k=args.k)
    inputs = _cc_inputs(args.n, args.seed)
    if args.live:
        import asyncio

        from repro.service.loadgen import named_plan
        from repro.service.runtime import (
            InstanceSpec,
            ServiceConfig,
            ServiceRuntime,
        )

        async def _run():
            config = ServiceConfig(
                n=args.n, f=args.f, seed=args.seed,
                plan=named_plan(args.plan, args.n),
            )
            async with ServiceRuntime(config) as runtime:
                return await runtime.run_instance_recorded(InstanceSpec(
                    "cc-cli", args.protocol, inputs=inputs, k=args.k,
                ))

        return asyncio.run(_run())
    return record_reliable_run(
        protocol, inputs, args.f,
        max_rounds=rounds, seed=args.seed, plan=_cc_sim_plan(args.plan),
        stop_on_decision=False,
    )


def _cmd_cc(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.cc import (
        AsyncTrace,
        CC_SERVICE_NAMES,
        certify,
        project,
        resolve_cc_protocol,
    )

    if args.cc_command == "compile":
        if args.list_catalog:
            from repro.check.spec import all_specs

            print("cc catalog (service + CLI protocol names):")
            for name in CC_SERVICE_NAMES:
                protocol, rounds = resolve_cc_protocol(name, f=1)
                print(f"  {name:<16} -> {protocol.name} ({rounds} round(s) at f=1)")
            print("\ncc conformance specs (python -m repro check --spec NAME):")
            for spec in all_specs():
                if spec.name.startswith("cc-"):
                    print(f"  {spec.name:<16} {spec.title}")
            return 0
        if args.protocol is None:
            print("cc compile: a protocol name (or --list) is required")
            return 2
        args.live = False
        result, trace = _cc_record(args)
        protocol, rounds = resolve_cc_protocol(args.protocol, f=args.f, k=args.k)
        print(f"compiled:  {protocol.name} ({rounds} round(s))")
        print(f"inputs:    {list(trace.inputs)}")
        print(f"decisions: {result.decisions}")
        staged = deferred = stale = 0
        for node in result.nodes:
            process = node.process
            staged += getattr(process, "sends_staged", 0)
            deferred += getattr(process, "sends_deferred", 0)
            stale += getattr(process, "stale_discarded", 0)
        print(f"rewriting: {staged} send(s) round-tagged, {deferred} "
              f"buffered early, {stale} stale discarded; "
              f"{result.total_late_discarded} late deliveries dropped at "
              "round boundaries")
        print(result.audit.summary())
        return 0 if result.audit.ok else 1

    if args.cc_command == "certify":
        if args.trace is not None:
            trace = AsyncTrace.from_doc(
                json.loads(Path(args.trace).read_text())
            )
            print(f"loaded:    {args.trace} ({len(trace.events)} events, "
                  f"source={trace.source})")
        elif args.protocol is None:
            print("cc certify: a protocol name or --trace is required")
            return 2
        else:
            _, trace = _cc_record(args)
            print(f"recorded:  {trace.protocol} on "
                  f"{'live service' if args.live else 'simulated overlay'} "
                  f"({len(trace.events)} events, plan={args.plan})")
        certificate = certify(trace, strict=args.strict)
        print(certificate.summary())
        for violation in certificate.violations:
            print(f"  {violation}")
        if args.save:
            directory = Path(args.save)
            directory.mkdir(parents=True, exist_ok=True)
            slug = "".join(
                ch if ch.isalnum() or ch in "-_" else "_"
                for ch in trace.protocol
            ).strip("_")
            name = f"cc_trace_{slug}_s{args.seed}.json"
            path = directory / name
            path.write_text(json.dumps(trace.to_doc(), indent=2))
            print(f"wrote {path}")
        return 0 if certificate.closed else 1

    # project
    from repro.cc import UncertifiedTraceError
    from repro.core.replay import verify_trace_consistency

    trace = AsyncTrace.from_doc(json.loads(Path(args.trace).read_text()))
    try:
        projected = project(trace)
    except UncertifiedTraceError as exc:
        print(f"projection refused: {exc}")
        return 1
    verify_trace_consistency(projected)
    print(f"projected: {projected.num_rounds} round(s), n={projected.n}, "
          "replay-consistent")
    print(f"decisions: {projected.decisions}")
    if args.spec:
        from repro.check.spec import get_spec

        spec = get_spec(args.spec)
        failures = 0
        for invariant in spec.invariants:
            message = invariant.failure(projected, projected.n)
            if message is None:
                print(f"  {invariant.name}: OK")
            else:
                failures += 1
                print(f"  {invariant.name}: FAIL — {message}")
        if failures:
            return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "models": _cmd_models,
        "run": _cmd_run,
        "lattice": _cmd_lattice,
        "complex": _cmd_complex,
        "certify": _cmd_certify,
        "chaos": _cmd_chaos,
        "bench": _cmd_bench,
        "serve": _cmd_serve,
        "load": _cmd_load,
        "check": _cmd_check,
        "ho": _cmd_ho,
        "cc": _cmd_cc,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
