"""Communication-closure compilation and certification (``repro.cc``).

The Damian–Drăgoi–Widder bridge between the repo's two worlds:

- **compile** (:mod:`repro.cc.compiler`): take an asynchronous
  message-passing protocol written as tagged handlers
  (:mod:`repro.cc.model`) — or any native round protocol through the
  adapter — and rewrite it onto communication-closed rounds: round-tag
  every send, buffer early messages, discard stale ones.  The output is
  an ordinary :class:`repro.core.algorithm.Protocol` that every engine
  and the live service run unchanged.
- **certify & project** (:mod:`repro.cc.certify`): take a recorded async
  execution (:mod:`repro.cc.trace`) and either certify it
  communication-closed or produce a structured violation naming the
  boundary-crossing message; certified traces project onto
  :class:`~repro.core.types.ExecutionTrace` round traces consumable by
  the ``repro.check`` specs and ``shrink()`` as-is.

The ``cc-*`` conformance specs (:mod:`repro.cc.specs`) certify the
compiler exhaustively at small sizes; ``python -m repro cc`` exposes
compile/certify/project on the command line.
"""

from repro.cc.catalog import (
    CC_SERVICE_NAMES,
    echo_min_protocol,
    resolve_cc_protocol,
)
from repro.cc.certify import (
    CcCertificate,
    ClosureViolation,
    UncertifiedTraceError,
    certify,
    project,
)
from repro.cc.compiler import (
    CompiledProcess,
    RoundProtocolAdapter,
    adapt_protocol,
    compile_protocol,
)
from repro.cc.model import (
    AsyncContext,
    AsyncProcess,
    AsyncProtocol,
    TagDisciplineError,
)
from repro.cc.trace import (
    AsyncTrace,
    CcEvent,
    TraceRecorder,
    record_overlay_run,
    record_reliable_run,
)

__all__ = [
    "AsyncContext",
    "AsyncProcess",
    "AsyncProtocol",
    "AsyncTrace",
    "CC_SERVICE_NAMES",
    "CcCertificate",
    "CcEvent",
    "ClosureViolation",
    "CompiledProcess",
    "RoundProtocolAdapter",
    "TagDisciplineError",
    "TraceRecorder",
    "UncertifiedTraceError",
    "adapt_protocol",
    "certify",
    "compile_protocol",
    "echo_min_protocol",
    "project",
    "record_overlay_run",
    "record_reliable_run",
    "resolve_cc_protocol",
]
