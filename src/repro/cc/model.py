"""The tagged-handler async protocol format the cc compiler consumes.

Damian, Drăgoi and Widder ("Communication-closed asynchronous protocols",
PAPERS.md) rewrite asynchronous message-passing protocols into synchronized
rounds by *round-tagging* every send, *buffering* messages that arrive for a
future round, and *discarding* messages for rounds already left.  The
rewriting applies to protocols whose sends can be assigned tags such that no
handler ever needs to send "into the past" — the communication-closed
fragment (Elrad–Francez).

This module is the source language of that rewriting: an asynchronous
protocol is a set of per-process *handlers* reacting to deliveries, with
every broadcast carrying an explicit phase tag:

- :meth:`AsyncProcess.on_start` fires once, before anything is sent;
- :meth:`AsyncProcess.on_message` fires per delivered (tagged) payload;
- :meth:`AsyncProcess.on_phase_end` fires when the system closes a phase —
  the moment the runtime has heard *enough* (``n − f`` senders) for the tag
  and hands over who was heard and who is suspected.

Handlers talk back through an :class:`AsyncContext`: ``ctx.send(payload,
tag=...)`` stages a broadcast for the given phase and ``ctx.decide(value)``
commits an output.  The *tag discipline* is the communication-closure
condition, enforced at staging time: a handler may send for the current
frontier phase or any later one (buffered — the early-send half of the
rewriting), but never for a phase whose broadcast already left
(:class:`TagDisciplineError`, or counted-and-dropped under the permissive
compile option — the stale-discard half).
"""

from __future__ import annotations

import copy as _copy
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.core.types import ProcessId, RRFDError

__all__ = [
    "TagDisciplineError",
    "AsyncContext",
    "AsyncProcess",
    "AsyncProtocol",
]


class TagDisciplineError(RRFDError):
    """A handler tried to send outside the communication-closed fragment.

    Raised when a send names a phase whose broadcast has already been
    emitted (a *stale* send — it would have to cross a round boundary
    backwards), or a phase beyond the protocol's declared depth.
    """


class AsyncContext:
    """What a handler may do: inspect its identity, send tagged, decide.

    One context is bound to one compiled process (the *host*, duck-typed:
    it exposes ``pid``/``n``/``input_value``, a staging method ``_stage``
    and the ``decide`` method of :class:`repro.core.algorithm.RoundProcess`).
    The context is deliberately narrow — handlers cannot see buffers, other
    processes, or the clock, which is what makes compiled executions a pure
    function of (inputs, suspicion history).
    """

    __slots__ = ("_host",)

    def __init__(self, host: Any) -> None:
        self._host = host

    @property
    def pid(self) -> ProcessId:
        return self._host.pid

    @property
    def n(self) -> int:
        return self._host.n

    @property
    def input(self) -> Any:
        return self._host.input_value

    @property
    def frontier(self) -> int:
        """The earliest phase a send may still target (next unemitted tag)."""
        return self._host.frontier

    @property
    def decided(self) -> bool:
        return self._host.decided

    def send(self, payload: Any, *, tag: int | None = None) -> None:
        """Stage ``payload`` for broadcast in phase ``tag``.

        ``tag`` defaults to the frontier phase.  Sends for later phases are
        buffered until that phase's broadcast; sends for earlier phases are
        stale (see :class:`TagDisciplineError`).
        """
        self._host._stage(self.frontier if tag is None else tag, payload)

    def decide(self, value: Any) -> None:
        self._host.decide(value)


class AsyncProcess(ABC):
    """One process of an asynchronous protocol, as tagged handlers.

    Handlers must be deterministic (no clocks, no randomness): the compiled
    round process replays them from the view contents, and conformance
    checking relies on executions being pure functions of the inputs and
    the suspicion history.
    """

    def on_start(self, ctx: AsyncContext) -> None:
        """Called once, before phase 1's broadcast is assembled."""

    @abstractmethod
    def on_message(
        self, ctx: AsyncContext, src: ProcessId, tag: int, payload: Any
    ) -> None:
        """Called for each payload delivered for phase ``tag``."""

    def on_phase_end(
        self,
        ctx: AsyncContext,
        tag: int,
        heard: Mapping[ProcessId, tuple[Any, ...]],
        suspected: frozenset[ProcessId],
    ) -> None:
        """Called when the runtime closes phase ``tag``.

        ``heard`` maps every sender the runtime heard for the phase to the
        tuple of payloads it delivered (empty for a sender that was heard
        but sent nothing — e.g. a crash-silenced process); ``suspected`` is
        the phase's ``D(i, r)``.  ``heard.keys() ∪ suspected`` covers all
        of ``S`` — the RRFD guarantee, handed to the handler.
        """

    def clone(self) -> "AsyncProcess":
        """An independent copy at the current state (see
        :meth:`repro.core.algorithm.RoundProcess.copy` for the contract).
        The default deep-copies; override when a cheaper copy is sound.
        """
        return _copy.deepcopy(self)


@dataclass(frozen=True)
class AsyncProtocol:
    """A named family of :class:`AsyncProcess` factories.

    ``phases`` is the protocol's depth — the largest tag any handler may
    send for — either a constant or a function of the system size ``n``.
    """

    name: str
    phases: int | Callable[[int], int]
    spawn: Callable[[ProcessId, int, Any], AsyncProcess]

    def depth(self, n: int) -> int:
        value = self.phases(n) if callable(self.phases) else self.phases
        if value < 1:
            raise ValueError(f"protocol {self.name!r}: phases must be ≥ 1")
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AsyncProtocol({self.name!r})"
