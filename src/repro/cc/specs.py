"""Conformance specs for the communication-closure compiler (``cc-*``).

Two claims, both registered through the same machinery as the native
specs and therefore checked by every engine (exhaustive, BFS, the
work-stealing scheduler, the bitset kernel, fuzzing, the CLI):

1. **Compilation is transparent** — ``cc-kset``, ``cc-consensus``,
   ``cc-floodset`` and ``cc-adopt-commit`` are the native specs with the
   protocol replaced by its adapt→compile round trip
   (:func:`~repro.cc.compiler.adapt_protocol` then
   :func:`~repro.cc.compiler.compile_protocol`) and every claim —
   predicate, round budget, invariants, input families, symmetry — kept
   verbatim.  Exhaustive certification at ``n ≤ 3`` then states: on every
   adversary the native protocol survives, the compiled one survives too.

2. **Native async programs compile correctly but keep async weakness** —
   ``cc-echo-min`` is the tagged-handler min-flooding program under the
   asynchronous predicate ``|D(i,r)| ≤ f``.  Its spec claims validity and
   termination but deliberately **not** agreement: one round of async
   message passing cannot solve consensus (the paper's separation), and
   the compiler must not manufacture synchrony that is not there.
"""

from __future__ import annotations

import random
from dataclasses import replace

from repro.cc.catalog import echo_min_protocol
from repro.cc.compiler import adapt_protocol, compile_protocol
from repro.check.spec import ConformanceSpec, TraceInvariant, get_spec, register
from repro.check.specs import structural_invariant
from repro.core.predicates import AsyncMessagePassing
from repro.protocols.properties import (
    PropertyFailure,
    check_termination,
    check_validity,
)

__all__ = ["COMPILED_SPEC_BASES", "compiled_spec"]

#: Native specs lifted through the compiler, verbatim claims included.
COMPILED_SPEC_BASES = ("kset", "consensus", "floodset", "adopt-commit")


def compiled_spec(base_name: str) -> ConformanceSpec:
    """The ``cc-`` lift of a registered native spec (not yet registered)."""
    base = get_spec(base_name)

    def protocol(n: int, _base: ConformanceSpec = base):
        return compile_protocol(
            adapt_protocol(_base.protocol(n), _base.rounds(n))
        )

    return replace(
        base,
        name=f"cc-{base.name}",
        title=f"compiled {base.name}: {base.title}",
        protocol=protocol,
        notes=(
            f"the {base.name!r} spec with its protocol compiled through "
            "repro.cc (async adapter → round compiler); identical claims, "
            "so exhaustive certification doubles as a compiler-equivalence "
            "proof at this size"
        ),
    )


for _base_name in COMPILED_SPEC_BASES:
    register(compiled_spec(_base_name))


# ---------------------------------------------------------------------------
# cc-echo-min: a native tagged-handler program under the async predicate


_ECHO_PHASES = 2  # f + 1 with f = 1 — the depth the service catalog uses


def _em_inputs(n: int) -> list[tuple[int, ...]]:
    return [tuple(range(n))]


def _em_sample_inputs(n: int, rng: random.Random) -> tuple[int, ...]:
    return tuple(rng.randrange(n) for _ in range(n))


def _em_validity(trace, n):
    check_validity(trace)


def _em_termination(trace, n):
    check_termination(trace, by_round=_ECHO_PHASES)


def _em_decides_a_minimum(trace, n):
    """Every decision is the minimum of *some* nonempty input subset
    containing the decider's own value — the strongest claim async
    min-flooding supports (full agreement would need synchrony)."""
    for pid, value in enumerate(trace.decisions):
        if value is None:
            continue
        if value > trace.inputs[pid]:
            raise PropertyFailure(
                f"p{pid} decided {value!r}, above its own input "
                f"{trace.inputs[pid]!r} — min-flooding can only go down"
            )
        if value not in trace.inputs:
            raise PropertyFailure(
                f"p{pid} decided {value!r}, not an input"
            )


register(ConformanceSpec(
    name="cc-echo-min",
    title="compiled async echo-min: validity+termination under "
          "|D(i,r)| ≤ f (and deliberately *no* agreement claim)",
    protocol=lambda n: compile_protocol(echo_min_protocol(_ECHO_PHASES)),
    predicate=lambda n: AsyncMessagePassing(n, 1),
    rounds=lambda n: _ECHO_PHASES,
    invariants=(
        TraceInvariant("validity", _em_validity),
        TraceInvariant(
            "min-monotone", _em_decides_a_minimum,
            "decisions are inputs, never above the decider's own",
        ),
        TraceInvariant(
            "termination", _em_termination,
            f"every process decides by phase {_ECHO_PHASES}",
        ),
        structural_invariant(),
    ),
    exhaustive_inputs=_em_inputs,
    sample_inputs=_em_sample_inputs,
    symmetry="none",
    notes="a native AsyncProcess program (no round-protocol underneath); "
          "agreement is intentionally absent from the invariants — under "
          "the async predicate different processes may settle on "
          "different minima, which is the paper's async/sync separation",
))
