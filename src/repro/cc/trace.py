"""Recorded async executions: the event stream the cc certifier consumes.

An :class:`AsyncTrace` is a flat, sequence-numbered event log of one
asynchronous execution — every tagged send, every delivery, every discarded
boundary-crossing message, every round advance (with the consumed view) and
every decision.  It is produced two ways:

- :class:`TraceRecorder` plugs into the duck-typed observer hooks of the
  simulated substrates (``AsyncNetwork``/``ChaosNetwork`` message hooks,
  ``RoundOverlayNode`` advance/discard hooks) —
  :func:`record_reliable_run` and :func:`record_overlay_run` wire it up;
- the live :mod:`repro.service` runtime feeds the same recorder directly
  from its socket loop (one recorder per instance).

The log is JSON-serializable via the service transport codec, so traces
survive a round trip through ``repro cc certify --save``/``--trace`` files
with payload types (tuples, frozensets, int dict keys) intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.types import RoundView
from repro.protocols.adopt_commit import AdoptCommitOutcome
from repro.service.transport import decode_payload, encode_payload

__all__ = [
    "CcEvent",
    "AsyncTrace",
    "TraceRecorder",
    "record_overlay_run",
    "record_reliable_run",
]

#: Event kinds, in the vocabulary of the communication-closure rewriting.
EVENT_KINDS = ("send", "deliver", "discard", "advance", "decide")

_CC_TAG_KEY = "__cc__"


def _encode(value: Any) -> Any:
    """The wire codec plus the one domain type decide events may carry.

    Adopt-commit *decisions* are :class:`AdoptCommitOutcome` objects —
    never sent on the wire, so the transport codec rightly refuses them,
    but a recorded trace stores them in its ``decide`` events.
    """
    if isinstance(value, AdoptCommitOutcome):
        return {
            _CC_TAG_KEY: "adopt-commit-outcome",
            "committed": value.committed,
            "value": encode_payload(value.value),
        }
    return encode_payload(value)


def _decode(value: Any) -> Any:
    if (
        isinstance(value, dict)
        and value.get(_CC_TAG_KEY) == "adopt-commit-outcome"
    ):
        return AdoptCommitOutcome(
            committed=value["committed"], value=decode_payload(value["value"])
        )
    return decode_payload(value)


@dataclass(frozen=True)
class CcEvent:
    """One step of a recorded async execution.

    ``seq`` is the global order the recorder observed (the certifier's
    replay order); ``time`` is substrate time (simulated or wall-clock),
    informational only.  Field meaning by ``kind``:

    ==========  ======================  ==================================
    kind        pid / peer              tag / payload
    ==========  ======================  ==================================
    ``send``    sender / receiver       message round / message payload
    ``deliver``  receiver / sender      message round / message payload
    ``discard``  receiver / sender      message round / round receiver was
                                        already in (the boundary crossed)
    ``advance``  receiver / ``None``    round closed / ``(messages,
                                        suspected)`` — the consumed view
    ``decide``   decider / ``None``     ``None`` / decided value
    ==========  ======================  ==================================
    """

    seq: int
    time: float
    kind: str
    pid: int
    peer: int | None
    tag: int | None
    payload: Any


@dataclass
class AsyncTrace:
    """A recorded asynchronous execution, ready for certification.

    ``source`` names the substrate that produced it (``"sim-overlay"``,
    ``"sim-reliable"``, ``"service"``, or ``"hand-built"`` for adversarial
    test traces).
    """

    n: int
    f: int
    inputs: tuple[Any, ...]
    protocol: str
    events: list[CcEvent] = field(default_factory=list)
    crashed: frozenset[int] = frozenset()
    source: str = "hand-built"

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> list[CcEvent]:
        return [event for event in self.events if event.kind == kind]

    # ------------------------------------------------------- serialization

    def to_doc(self) -> dict[str, Any]:
        """A JSON-safe document (via the service transport codec)."""
        return {
            "format": "repro.cc.trace/1",
            "n": self.n,
            "f": self.f,
            "inputs": encode_payload(self.inputs),
            "protocol": self.protocol,
            "crashed": sorted(self.crashed),
            "source": self.source,
            "events": [
                {
                    "seq": event.seq,
                    "t": event.time,
                    "kind": event.kind,
                    "pid": event.pid,
                    "peer": event.peer,
                    "tag": event.tag,
                    "payload": _encode(event.payload),
                }
                for event in self.events
            ],
        }

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "AsyncTrace":
        if doc.get("format") != "repro.cc.trace/1":
            raise ValueError(
                f"not a cc trace document (format={doc.get('format')!r})"
            )
        return cls(
            n=doc["n"],
            f=doc["f"],
            inputs=tuple(decode_payload(doc["inputs"])),
            protocol=doc["protocol"],
            crashed=frozenset(doc["crashed"]),
            source=doc["source"],
            events=[
                CcEvent(
                    seq=raw["seq"],
                    time=raw["t"],
                    kind=raw["kind"],
                    pid=raw["pid"],
                    peer=raw["peer"],
                    tag=raw["tag"],
                    payload=_decode(raw["payload"]),
                )
                for raw in doc["events"]
            ],
        )


def _parse_transport_payload(payload: Any) -> tuple[int, Any] | None:
    """Split a substrate wire payload into ``(round, data)``.

    Understands both overlay framings — ``(round, data)`` from the plain
    overlay and ``("data", round, data)`` from the reliable one; control
    traffic (``("ack", round)``, heartbeats) returns ``None`` and is not
    recorded, certification being about protocol messages.
    """
    if not isinstance(payload, tuple) or not payload:
        return None
    if payload[0] == "ack":
        return None
    if payload[0] == "data" and len(payload) == 3:
        return payload[1], payload[2]
    if isinstance(payload[0], int) and len(payload) == 2:
        return payload
    return None


class TraceRecorder:
    """Collects :class:`CcEvent`s from the substrate observer hooks.

    One recorder instance implements every hook the substrates know —
    ``on_send``/``on_deliver`` (network), ``on_advance``/``on_discard``
    (overlay nodes) — plus ``on_decide`` for runtimes that report
    decisions explicitly.  Events are appended in observation order;
    ``seq`` is the append index.
    """

    def __init__(self) -> None:
        self.events: list[CcEvent] = []

    def _append(
        self, time: float, kind: str, pid: int,
        peer: int | None, tag: int | None, payload: Any,
    ) -> None:
        self.events.append(
            CcEvent(len(self.events), time, kind, pid, peer, tag, payload)
        )

    # -------------------------------------------------- network hooks

    def on_send(self, src: int, dst: int, payload: Any, time: float) -> None:
        parsed = _parse_transport_payload(payload)
        if parsed is not None:
            self._append(time, "send", src, dst, parsed[0], parsed[1])

    def on_deliver(self, src: int, dst: int, payload: Any, time: float) -> None:
        parsed = _parse_transport_payload(payload)
        if parsed is not None:
            self._append(time, "deliver", dst, src, parsed[0], parsed[1])

    # ---------------------------------------------------- node hooks

    def on_advance(self, pid: int, view: RoundView, decided: bool) -> None:
        time = self.events[-1].time if self.events else 0.0
        self._append(
            time, "advance", pid, None, view.round,
            (dict(view.messages), tuple(sorted(view.suspected))),
        )

    def on_discard(
        self, pid: int, src: int, round_number: int, at_round: int
    ) -> None:
        time = self.events[-1].time if self.events else 0.0
        self._append(time, "discard", pid, src, round_number, at_round)

    # ------------------------------------------------- runtime extras

    def on_decide(self, pid: int, value: Any, time: float) -> None:
        self._append(time, "decide", pid, None, None, value)

    def build(
        self,
        *,
        n: int,
        f: int,
        inputs: Iterable[Any],
        protocol: str,
        crashed: Iterable[int] = (),
        source: str = "hand-built",
    ) -> AsyncTrace:
        return AsyncTrace(
            n=n, f=f, inputs=tuple(inputs), protocol=protocol,
            events=list(self.events), crashed=frozenset(crashed),
            source=source,
        )


def _finalize(recorder: TraceRecorder, result: Any, *, source: str,
              protocol_name: str) -> AsyncTrace:
    end = recorder.events[-1].time if recorder.events else 0.0
    for node in result.nodes:
        if node.process.decided:
            recorder.on_decide(node.pid, node.process.decision, end)
    return recorder.build(
        n=result.n, f=result.f, inputs=result.inputs,
        protocol=protocol_name, crashed=result.crashed, source=source,
    )


def record_overlay_run(protocol: Any, inputs: Any, f: int, **kwargs: Any):
    """Run the plain round overlay with recording; ``(result, trace)``."""
    from repro.substrates.messaging.rounds import run_round_overlay

    recorder = TraceRecorder()
    result = run_round_overlay(
        protocol, inputs, f, observer=recorder, **kwargs
    )
    return result, _finalize(
        recorder, result, source="sim-overlay", protocol_name=protocol.name
    )


def record_reliable_run(protocol: Any, inputs: Any, f: int, **kwargs: Any):
    """Run the reliable overlay (chaos-capable) with recording attached.

    Same signature as
    :func:`repro.substrates.messaging.reliable.run_reliable_round_overlay`
    plus the implicit recorder; returns ``(result, trace)``.
    """
    from repro.substrates.messaging.reliable import run_reliable_round_overlay

    recorder = TraceRecorder()
    result = run_reliable_round_overlay(
        protocol, inputs, f, observer=recorder, **kwargs
    )
    return result, _finalize(
        recorder, result, source="sim-reliable", protocol_name=protocol.name
    )
