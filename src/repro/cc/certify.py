"""Certify recorded async executions communication-closed; project to rounds.

The compiler (:mod:`repro.cc.compiler`) *constructs* communication-closed
executions; this module *checks* them after the fact.  Given an
:class:`~repro.cc.trace.AsyncTrace` — from the simulated overlays, the live
service, or hand-built — :func:`certify` replays the event log and either
certifies the execution communication-closed or returns structured
violations, each one naming the offending message (sender, round tag,
receiver, and the boundary it crossed).

What "certified" means here, per receiver and in recorded order:

- **round-order** — advances close rounds ``1, 2, 3, …`` with no gaps;
- **view-without-delivery** — every message a closed view consumed was
  actually delivered to that receiver *for that round* before the advance;
  a view exhibiting a payload that never legally crossed the wire is the
  smoking gun of a round-boundary violation;
- **payload-drift** — deliveries match what the sender sent, and consumed
  views match what was delivered;
- **equivocation** — one sender, one round, one payload (retransmissions
  of the same payload are fine; two different payloads under one tag are
  not);
- **unmatched-deliver** — no delivery out of thin air.

Late deliveries the runtime already *discarded* (``discard`` events, and
deliveries arriving behind the receiver's frontier) are **statistics, not
violations**, by default: discarding them is the rewriting working as
designed — the consumed views stayed closed.  ``strict=True`` additionally
reports each one, attributed, for runs that are supposed to be
crossing-free (e.g. fault-free plans).

:func:`project` then collapses a certified trace onto the synchronous
round format: an :class:`~repro.core.types.ExecutionTrace` consumable by
``repro.check`` spec invariants, ``shrink()`` and the replay machinery,
unchanged.  Projection reuses the overlay's common-prefix/crash-padding
semantics (:meth:`OverlayResult.to_trace`), so live and simulated traces
project identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro import obs
from repro.cc.trace import AsyncTrace
from repro.core.types import ExecutionTrace, RoundView, RRFDError
from repro.substrates.messaging.rounds import OverlayResult

__all__ = [
    "ClosureViolation",
    "CcCertificate",
    "UncertifiedTraceError",
    "certify",
    "project",
]


@dataclass(frozen=True)
class ClosureViolation:
    """One reason a trace is not communication-closed.

    ``pid`` is the receiver whose round structure is broken, ``src`` the
    sender of the offending message (when one exists), ``tag`` the round
    the message was tagged for, ``event_seq`` the event that exposed it.
    """

    kind: str
    pid: int
    src: int | None
    tag: int | None
    detail: str
    event_seq: int

    def __str__(self) -> str:
        return f"[{self.kind}] p{self.pid} seq={self.event_seq}: {self.detail}"


@dataclass
class CcCertificate:
    """The certifier's verdict over one :class:`AsyncTrace`."""

    closed: bool
    violations: tuple[ClosureViolation, ...]
    stats: dict[str, int] = field(default_factory=dict)
    strict: bool = False

    def summary(self) -> str:
        checked = self.stats.get("messages_certified", 0)
        if self.closed:
            mode = " (strict)" if self.strict else ""
            return (
                f"COMMUNICATION-CLOSED{mode}: {checked} message(s) "
                f"certified across {self.stats.get('advances', 0)} round "
                f"advance(s), {self.stats.get('late_crossings', 0)} late "
                "crossing(s) discarded"
            )
        worst = self.violations[0]
        return (
            f"NOT CLOSED: {len(self.violations)} violation(s); first: {worst}"
        )


class UncertifiedTraceError(RRFDError):
    """Refused to project a trace that failed certification."""

    def __init__(self, certificate: CcCertificate) -> None:
        super().__init__(certificate.summary())
        self.certificate = certificate


def certify(trace: AsyncTrace, *, strict: bool = False) -> CcCertificate:
    """Replay ``trace`` and decide whether it is communication-closed."""
    tracer = obs.current_tracer()
    if tracer.enabled:
        tracer.begin(
            "cc.certify", n=trace.n, events=len(trace.events),
            source=trace.source, strict=strict,
        )
    violations: list[ClosureViolation] = []
    stats = {
        "events": len(trace.events),
        "sends": 0,
        "delivers": 0,
        "advances": 0,
        "decisions": 0,
        "late_crossings": 0,
        "messages_certified": 0,
    }

    # Pass 1: the send index — what each sender committed to, per round.
    sent: dict[tuple[int, int], Any] = {}
    for event in trace.events:
        if event.kind != "send" or event.tag is None:
            continue
        stats["sends"] += 1
        key = (event.pid, event.tag)
        if key not in sent:
            sent[key] = event.payload
        elif sent[key] != event.payload:
            violations.append(ClosureViolation(
                "equivocation", event.pid, event.pid, event.tag,
                f"p{event.pid} sent two different round-{event.tag} "
                f"payloads ({sent[key]!r} then {event.payload!r})",
                event.seq,
            ))

    # Pass 2: per-receiver replay in recorded order.
    frontier = {pid: 1 for pid in range(trace.n)}  # next round to close
    delivered: dict[tuple[int, int], dict[int, Any]] = {}
    for event in trace.events:
        if event.kind == "deliver":
            stats["delivers"] += 1
            dst, src, tag = event.pid, event.peer, event.tag
            key = (src, tag)
            if key not in sent:
                violations.append(ClosureViolation(
                    "unmatched-deliver", dst, src, tag,
                    f"delivery of a round-{tag} message from p{src} that "
                    "was never sent",
                    event.seq,
                ))
            elif sent[key] != event.payload:
                violations.append(ClosureViolation(
                    "payload-drift", dst, src, tag,
                    f"round-{tag} delivery from p{src} carries "
                    f"{event.payload!r}, but p{src} sent {sent[key]!r}",
                    event.seq,
                ))
            if tag < frontier[dst]:
                # A boundary crossing the runtime will discard: the
                # rewriting working, not a closure failure — unless the
                # caller demanded a crossing-free execution.
                stats["late_crossings"] += 1
                if strict:
                    violations.append(ClosureViolation(
                        "late-delivery", dst, src, tag,
                        f"round-{tag} message from p{src} reached p{dst} "
                        f"after it advanced to round {frontier[dst]} "
                        "(crossed the closed round boundary)",
                        event.seq,
                    ))
            delivered.setdefault((dst, tag), {})[src] = event.payload
        elif event.kind == "discard":
            # Already counted at delivery time when the delivery was
            # recorded; runtimes that report discards without deliveries
            # (the live service) are counted here.
            if (event.pid, event.tag) not in delivered or (
                event.peer not in delivered[(event.pid, event.tag)]
            ):
                stats["late_crossings"] += 1
                if strict:
                    violations.append(ClosureViolation(
                        "late-delivery", event.pid, event.peer, event.tag,
                        f"round-{event.tag} message from p{event.peer} "
                        f"reached p{event.pid} after it advanced to round "
                        f"{event.payload} (discarded at the boundary)",
                        event.seq,
                    ))
        elif event.kind == "advance":
            stats["advances"] += 1
            pid, round_number = event.pid, event.tag
            if round_number != frontier[pid]:
                violations.append(ClosureViolation(
                    "round-order", pid, None, round_number,
                    f"p{pid} closed round {round_number} but its next "
                    f"unclosed round is {frontier[pid]}",
                    event.seq,
                ))
            messages, _suspected = event.payload
            heard = delivered.get((pid, round_number), {})
            for src, payload in sorted(messages.items()):
                if payload is None:
                    continue  # crash-silence marker, nothing crossed a wire
                if src not in heard:
                    violations.append(ClosureViolation(
                        "view-without-delivery", pid, src, round_number,
                        f"p{pid}'s round-{round_number} view consumes a "
                        f"message from p{src} that was never delivered to "
                        f"it for round {round_number} — the message "
                        "crossed the round boundary",
                        event.seq,
                    ))
                elif heard[src] != payload:
                    violations.append(ClosureViolation(
                        "payload-drift", pid, src, round_number,
                        f"p{pid}'s round-{round_number} view records "
                        f"{payload!r} from p{src}, but the delivery "
                        f"carried {heard[src]!r}",
                        event.seq,
                    ))
                else:
                    stats["messages_certified"] += 1
            frontier[pid] = max(frontier[pid], round_number + 1)
        elif event.kind == "decide":
            stats["decisions"] += 1

    certificate = CcCertificate(
        closed=not violations,
        violations=tuple(violations),
        stats=stats,
        strict=strict,
    )
    metrics = obs.current_metrics()
    if metrics.enabled:
        metrics.counter("cc.traces_certified").inc()
        metrics.counter("cc.messages_certified").inc(
            stats["messages_certified"]
        )
        metrics.counter("cc.violations").inc(len(violations))
        metrics.counter("cc.late_crossings").inc(stats["late_crossings"])
    if tracer.enabled:
        tracer.end(
            "cc.certify", closed=certificate.closed,
            violations=len(violations),
        )
    return certificate


class _ProjectedProcess:
    """Decision holder duck-typing the node's wrapped process."""

    def __init__(self, decision: Any) -> None:
        self.decision = decision

    @property
    def decided(self) -> bool:
        return self.decision is not None


class _ProjectedNode:
    """Reassembled per-process round history, duck-typing an overlay node."""

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.views: list[RoundView] = []
        self.emissions: dict[int, Any] = {}
        self.process = _ProjectedProcess(None)


def project(
    trace: AsyncTrace, *, certificate: CcCertificate | None = None
) -> ExecutionTrace:
    """Collapse a certified async trace onto the round format.

    Certifies first (or validates a caller-supplied ``certificate``) and
    raises :class:`UncertifiedTraceError` on a trace that is not
    communication-closed — only closed executions *have* a faithful round
    projection.  The result reuses the overlay's common-prefix and
    crash-padding semantics, so it passes
    :func:`repro.core.replay.verify_trace_consistency` and plugs into the
    ``repro.check`` invariants and ``shrink()`` unchanged.
    """
    if certificate is None:
        certificate = certify(trace)
    if not certificate.closed:
        raise UncertifiedTraceError(certificate)
    nodes = [_ProjectedNode(pid) for pid in range(trace.n)]
    for event in trace.events:
        if event.kind == "send":
            nodes[event.pid].emissions.setdefault(event.tag, event.payload)
        elif event.kind == "advance":
            messages, suspected = event.payload
            # The validating constructor: a certified trace whose views do
            # not satisfy the coverage guarantee should fail loudly here.
            nodes[event.pid].views.append(RoundView(
                pid=event.pid,
                round=event.tag,
                messages=dict(messages),
                suspected=frozenset(suspected),
                n=trace.n,
            ))
        elif event.kind == "decide":
            nodes[event.pid].process.decision = event.payload
    result = OverlayResult(
        n=trace.n,
        f=trace.f,
        inputs=trace.inputs,
        nodes=nodes,  # type: ignore[arg-type]  (duck-typed projection)
        network=None,  # type: ignore[arg-type]  (to_trace never touches it)
        crashed=trace.crashed,
    )
    projected = result.to_trace()
    tracer = obs.current_tracer()
    if tracer.enabled:
        tracer.event(
            "cc.project", n=trace.n, rounds=projected.num_rounds,
            source=trace.source,
        )
    return projected
