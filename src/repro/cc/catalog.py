"""The cc protocol catalog: native async programs and compiled adaptations.

Two kinds of entries:

- :func:`echo_min_protocol` is a *native* tagged-handler program — async
  min-flooding, written directly against :class:`~repro.cc.model.
  AsyncProcess`.  It is deliberately weaker than consensus: under the
  asynchronous predicate different processes may settle on different
  minima (the paper's async impossibility), so its spec claims validity
  and termination but **not** agreement.
- :func:`resolve_cc_protocol` adapts the service's crash-tolerant catalog
  (FloodSet consensus, FloodMin k-set, adopt-commit) through
  :func:`~repro.cc.compiler.adapt_protocol` and compiles the result, so
  ``cc-*`` names run on the live runtime and CLI exactly where the native
  names do — same depth, same decision vectors, one extra compilation
  layer whose transparency the differential suite certifies.
"""

from __future__ import annotations

from typing import Any

from repro.cc.compiler import adapt_protocol, compile_protocol
from repro.cc.model import AsyncContext, AsyncProcess, AsyncProtocol
from repro.core.algorithm import Protocol
from repro.core.types import ProcessId
from repro.protocols.adopt_commit import adopt_commit_protocol
from repro.protocols.consensus import floodset_consensus_protocol
from repro.protocols.floodset import floodmin_protocol, rounds_needed

__all__ = [
    "EchoMinProcess",
    "echo_min_protocol",
    "CC_SERVICE_NAMES",
    "resolve_cc_protocol",
]


class EchoMinProcess(AsyncProcess):
    """Async min-flooding: echo the smallest value heard, decide at depth.

    Phase 1 broadcasts the input; every later phase re-broadcasts the
    running minimum; the final phase decides it.  All state is immutable
    scalars, so the default deep-copy clone is already cheap.
    """

    def __init__(self, input_value: Any, *, phases: int) -> None:
        self.phases = phases
        self.best = input_value

    def on_start(self, ctx: AsyncContext) -> None:
        ctx.send(self.best, tag=1)

    def on_message(
        self, ctx: AsyncContext, src: ProcessId, tag: int, payload: Any
    ) -> None:
        if payload < self.best:
            self.best = payload

    def on_phase_end(self, ctx, tag, heard, suspected) -> None:
        if tag < self.phases:
            ctx.send(self.best, tag=tag + 1)
        else:
            ctx.decide(self.best)


def echo_min_protocol(phases: int = 2) -> AsyncProtocol:
    """The echo-min family at a fixed depth (``phases`` ≥ 1)."""
    return AsyncProtocol(
        name=f"echo-min({phases})",
        phases=phases,
        spawn=lambda pid, n, value: EchoMinProcess(value, phases=phases),
    )


#: Catalog names :func:`resolve_cc_protocol` accepts (service + CLI).
CC_SERVICE_NAMES = ("cc-consensus", "cc-kset", "cc-adopt-commit", "cc-echo-min")


def resolve_cc_protocol(name: str, *, f: int, k: int = 1) -> tuple[Protocol, int]:
    """Map a ``cc-*`` catalog name to a compiled protocol and its depth.

    The first three mirror :func:`repro.service.runtime.resolve_protocol`
    entry for entry (same base protocol, same round budget) with the
    async→round compilation layer in between; ``cc-echo-min`` is the
    native async program at depth ``f + 1``.
    """
    if name == "cc-consensus":
        rounds = rounds_needed(f, 1)
        base = floodset_consensus_protocol(f)
    elif name == "cc-kset":
        rounds = rounds_needed(f, k)
        base = floodmin_protocol(f, k)
    elif name == "cc-adopt-commit":
        rounds = 2
        base = adopt_commit_protocol()
    elif name == "cc-echo-min":
        rounds = f + 1
        return compile_protocol(echo_min_protocol(rounds)), rounds
    else:
        raise ValueError(
            f"unknown cc protocol {name!r} "
            f"(expected one of {' | '.join(CC_SERVICE_NAMES)})"
        )
    return compile_protocol(adapt_protocol(base, rounds)), rounds
