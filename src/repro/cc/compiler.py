"""The async→round compiler: communication-closed rewriting onto rounds.

This is the constructive half of the Damian–Drăgoi–Widder rewriting
applied inside the RRFD model.  A tagged-handler :class:`~repro.cc.model.
AsyncProtocol` is compiled into a :class:`repro.core.algorithm.Protocol`
whose per-process state machines are :class:`CompiledProcess` instances —
ordinary ``emit``/``absorb`` round processes runnable unchanged by every
engine in the repo (the synchronous executor, ``explore()``, the BFS and
work-stealing schedulers, the simulated overlays and the live
``repro.service`` runtime).

The three moves of the rewriting, and where each one lives:

- **round-tagging** — every compiled emission is a wrapper
  ``("cc", r, payloads)``; the tag travels with the message, so receivers
  (and the trace certifier) can attribute each payload to its phase even
  when the transport reorders or duplicates it.
- **buffering early sends** — a handler may ``ctx.send(..., tag=t)`` for a
  *future* phase ``t``; the payload waits in :attr:`CompiledProcess.staged`
  until phase ``t``'s broadcast (counted in ``sends_deferred``).
- **discarding stale sends** — a send for a phase whose broadcast already
  left cannot be rewritten (it would cross a closed round boundary
  backwards).  Under the default strict discipline it raises
  :class:`~repro.cc.model.TagDisciplineError`; with ``strict_tags=False``
  it is counted in ``stale_discarded`` and dropped, mirroring how the
  round overlay drops late *deliveries*.

:class:`RoundProtocolAdapter` closes the loop in the other direction: it
wraps any native round protocol as an async one (each round becomes one
tagged phase), so the existing catalog — floodset consensus, k-set
agreement, adopt-commit — can be pushed through the compiler and checked
for equivalence against its native self (the ``cc-*`` conformance specs
and the differential round-trip suite).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.cc.model import (
    AsyncContext,
    AsyncProcess,
    AsyncProtocol,
    TagDisciplineError,
)
from repro.core.algorithm import Protocol, RoundProcess
from repro.core.types import ProcessId, Round, RoundView

__all__ = [
    "CC_TAG",
    "CompiledProcess",
    "compile_protocol",
    "RoundProtocolAdapter",
    "adapt_protocol",
]

#: Marker heading every compiled emission: ``(CC_TAG, round, payloads)``.
CC_TAG = "cc"


def unwrap_emission(payload: Any) -> tuple[int, tuple[Any, ...]]:
    """Split a compiled emission into ``(tag, payloads)``.

    Raises :class:`ValueError` on anything that is not a well-formed
    ``("cc", r, payloads)`` wrapper — used by ``absorb`` and the trace
    certifier, both of which must reject foreign payloads loudly rather
    than misattribute them to a phase.
    """
    if (
        not isinstance(payload, tuple)
        or len(payload) != 3
        or payload[0] != CC_TAG
        or not isinstance(payload[1], int)
    ):
        raise ValueError(f"not a compiled cc emission: {payload!r}")
    return payload[1], tuple(payload[2])


class CompiledProcess(RoundProcess):
    """A tagged-handler program compiled onto the emit/absorb round loop.

    Round ``r`` of the compiled process *is* phase ``r`` of the async
    program: ``emit(r)`` flushes every payload staged for tag ``r`` inside
    one wrapper, and ``absorb(view)`` replays the view's wrapped payloads
    through ``on_message`` (in sender order — determinism) before handing
    the phase summary to ``on_phase_end``.  A ``None`` payload from a
    sender (the executor's crash-silence convention) becomes an empty
    heard-tuple, never an ``on_message`` call.
    """

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        input_value: Any,
        *,
        program: AsyncProcess,
        depth: int,
        strict_tags: bool = True,
    ) -> None:
        super().__init__(pid, n, input_value)
        self.program = program
        self.depth = depth
        self.strict_tags = strict_tags
        self.frontier = 1  # earliest phase a send may still target
        self.staged: dict[int, list[Any]] = {}
        self.started = False
        self.sends_staged = 0
        self.sends_deferred = 0
        self.stale_discarded = 0
        self.ctx = AsyncContext(self)

    # --------------------------------------------------------- round loop

    def emit(self, round_number: Round) -> Any:
        if round_number == 1 and not self.started:
            self.started = True
            self.program.on_start(self.ctx)
        payloads = tuple(self.staged.pop(round_number, ()))
        # The phase's broadcast leaves now: later sends for it are stale.
        self.frontier = max(self.frontier, round_number + 1)
        return (CC_TAG, round_number, payloads)

    def absorb(self, view: RoundView) -> None:
        heard: dict[ProcessId, tuple[Any, ...]] = {}
        for src in sorted(view.messages):
            wrapped = view.messages[src]
            if wrapped is None:  # crash-silenced sender: heard, said nothing
                heard[src] = ()
                continue
            tag, payloads = unwrap_emission(wrapped)
            if tag != view.round:
                raise ValueError(
                    f"p{self.pid}: round-{view.round} view carries a "
                    f"tag-{tag} emission from p{src} — the substrate "
                    "broke round isolation"
                )
            for payload in payloads:
                self.program.on_message(self.ctx, src, tag, payload)
            heard[src] = payloads
        self.program.on_phase_end(self.ctx, view.round, heard, view.suspected)

    # ------------------------------------------------------------ staging

    def _stage(self, tag: int, payload: Any) -> None:
        if tag > self.depth:
            raise TagDisciplineError(
                f"p{self.pid}: send tagged {tag} exceeds the protocol "
                f"depth of {self.depth} phases"
            )
        if tag < self.frontier:
            if self.strict_tags:
                raise TagDisciplineError(
                    f"p{self.pid}: stale send for phase {tag} — that "
                    f"broadcast already left (frontier is {self.frontier})"
                )
            self.stale_discarded += 1
            return
        if tag > self.frontier:
            self.sends_deferred += 1
        self.sends_staged += 1
        self.staged.setdefault(tag, []).append(payload)

    # ------------------------------------------------------------ forking

    def copy(self) -> "CompiledProcess":
        clone = self._shallow_copy()
        clone.program = self.program.clone()
        clone.staged = {tag: list(p) for tag, p in self.staged.items()}
        clone.ctx = AsyncContext(clone)
        return clone


def compile_protocol(
    async_protocol: AsyncProtocol,
    *,
    strict_tags: bool = True,
    name: str | None = None,
) -> Protocol:
    """Compile an async protocol into a round :class:`Protocol`.

    The result runs on every engine that consumes round protocols; its
    round ``r`` executes phase ``r`` of every process.  ``strict_tags``
    selects the tag discipline (raise vs. count-and-drop stale sends).
    """

    def factory(pid: ProcessId, n: int, input_value: Any) -> CompiledProcess:
        return CompiledProcess(
            pid, n, input_value,
            program=async_protocol.spawn(pid, n, input_value),
            depth=async_protocol.depth(n),
            strict_tags=strict_tags,
        )

    return Protocol(name or f"cc[{async_protocol.name}]", factory)


class RoundProtocolAdapter(AsyncProcess):
    """A native round process re-expressed as tagged handlers.

    Phase ``r`` carries the wrapped process's round-``r`` emission; at
    phase end the heard map is reassembled into the :class:`RoundView` the
    native process expects (empty heard-tuple ↦ ``None`` payload — the
    crash-silence convention both sides share) and fed to ``absorb``.
    Compiling an adapted protocol must therefore reproduce the native
    executions bit for bit, which is exactly what the ``cc-*`` specs and
    the differential suite certify.
    """

    def __init__(self, inner: RoundProcess, phases: int) -> None:
        self.inner = inner
        self.phases = phases

    def on_start(self, ctx: AsyncContext) -> None:
        ctx.send(self.inner.emit(1), tag=1)

    def on_message(
        self, ctx: AsyncContext, src: ProcessId, tag: int, payload: Any
    ) -> None:
        pass  # the phase summary in on_phase_end carries everything

    def on_phase_end(
        self,
        ctx: AsyncContext,
        tag: int,
        heard: Mapping[ProcessId, tuple[Any, ...]],
        suspected: frozenset[ProcessId],
    ) -> None:
        messages = {
            src: (payloads[0] if payloads else None)
            for src, payloads in heard.items()
        }
        # The validating constructor on purpose: if heard ∪ suspected ever
        # failed to cover S the guarantee was broken upstream.
        view = RoundView(
            pid=ctx.pid, round=tag, messages=messages,
            suspected=suspected, n=ctx.n,
        )
        self.inner.absorb(view)
        if self.inner.decided:
            ctx.decide(self.inner.decision)
        if tag < self.phases:
            ctx.send(self.inner.emit(tag + 1), tag=tag + 1)

    def clone(self) -> "RoundProtocolAdapter":
        return RoundProtocolAdapter(self.inner.copy(), self.phases)


def adapt_protocol(
    protocol: Protocol,
    phases: int | Callable[[int], int],
) -> AsyncProtocol:
    """Express a native round protocol as an :class:`AsyncProtocol`.

    ``phases`` bounds the adapter's depth (a constant or a function of
    ``n``) — typically the spec's ``rounds`` budget, since an adapted
    process only ever sends one phase ahead.
    """

    def spawn(pid: ProcessId, n: int, input_value: Any) -> AsyncProcess:
        depth = phases(n) if callable(phases) else phases
        return RoundProtocolAdapter(protocol.spawn(pid, n, input_value), depth)

    return AsyncProtocol(
        name=f"async[{protocol.name}]", phases=phases, spawn=spawn
    )
