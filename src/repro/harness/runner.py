"""Seed-deterministic experiment execution with process-parallel sampling.

The contract between an experiment and the runner:

* ``run_cell(ctx)`` is a **pure, top-level** function (picklable, so worker
  processes can import it) executing ONE seeded sample of one grid cell and
  returning a small dict of observations.
* ``ctx`` is a :class:`SampleCtx`: the cell's parameters (mapping access),
  plus randomness derived *only* from ``(experiment, cell, sample index)``
  — never from process state — via :func:`repro.util.rng.sample_seed`.
* the experiment's ``reduce`` spec folds per-sample dicts into the cell's
  value with exact, mergeable reducers (:mod:`repro.harness.results`).

Determinism across worker counts is structural, not accidental: samples are
split into chunks at boundaries that depend only on the sample count, each
chunk folds its samples in index order, and chunk states are merged back in
index order.  ``--workers 1`` and ``--workers N`` therefore traverse the
same fold tree and produce bit-identical values; only wall-times differ.

Worker selection: an explicit ``workers=`` wins, else the
``RRFD_BENCH_WORKERS`` environment variable, else in-process serial
execution.  Small runs (a single chunk) always stay in-process — no pool
startup cost for tiny grids.
"""

from __future__ import annotations

import os
import sys
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro import obs
from repro.harness.grid import Cell, Grid
from repro.harness.results import (
    CellResult,
    Column,
    ExperimentResult,
    Reducer,
    resolve_reducer,
)
from repro.util.rng import derive_seed, make_rng, sample_seed

__all__ = [
    "SampleCtx",
    "Experiment",
    "CellExecutionError",
    "init_worker",
    "resolve_workers",
    "run_experiment",
    "run_one_cell",
    "run_with_speedup",
    "experiment_tables",
    "WORKERS_ENV",
]

WORKERS_ENV = "RRFD_BENCH_WORKERS"


class SampleCtx(Mapping):
    """What ``run_cell`` sees: cell parameters plus derived randomness.

    Mapping access (``ctx["n"]``) reads the cell's parameters.  ``ctx.rng``
    is the sample's own generator; components that need independent streams
    use ``ctx.sub_rng("label")`` (or ``ctx.sub_seed`` where an int seed is
    required), all derived from the same ``(experiment, cell, index)``
    identity.
    """

    __slots__ = ("experiment", "cell", "index", "seed", "_rng")

    def __init__(self, experiment: str, cell: Cell, index: int):
        self.experiment = experiment
        self.cell = cell
        self.index = index
        self.seed = sample_seed(experiment, cell.id, index)
        self._rng = None

    @property
    def rng(self):
        if self._rng is None:
            self._rng = make_rng(self.seed)
        return self._rng

    def sub_seed(self, label: str) -> int:
        return derive_seed("rrfd-sub", self.experiment, self.cell.id, self.index, label)

    def sub_rng(self, label: str):
        return make_rng(self.sub_seed(label))

    # Mapping over the cell's parameters
    def __getitem__(self, key: str) -> Any:
        return self.cell[key]

    def __iter__(self):
        return iter(self.cell)

    def __len__(self) -> int:
        return len(self.cell)

    def __repr__(self) -> str:
        return f"SampleCtx({self.experiment}, {self.cell.id}, sample {self.index})"


@dataclass(frozen=True)
class Experiment:
    """A declarative experiment: grid × seeded sample function × reduction.

    Args:
        id: short experiment id (``"E1"``); names the JSON artifact.
        title: the paper-style table title.
        grid: the parameter sweep.
        run_cell: pure top-level ``(SampleCtx) -> dict`` sample function.
        samples: default sample count per cell.
        reduce: ``key -> reducer`` for the sample dict's keys; keys not
            listed default to ``"last"``.
        finalize: optional ``(params, value) -> dict`` computing derived
            columns per cell (runs once, in the parent, after reduction;
            must be deterministic).
        chunk: samples per worker task; default splits each cell into at
            most 8 chunks.  Must not depend on the worker count.
        table: column spec for the paper-style report table.
        render: optional custom renderer ``(ExperimentResult) ->
            [(title, header, rows), ...]`` for experiments whose report is
            not one-row-per-cell (pivot tables, matrices).  Parent-side
            only; never shipped to workers.
        notes: free-form provenance (theorem number, ablation description).
    """

    id: str
    title: str
    grid: Grid
    run_cell: Callable[[SampleCtx], Mapping[str, Any]]
    samples: int = 1
    reduce: Mapping[str, str | Reducer] = field(default_factory=dict)
    finalize: Callable[[Mapping[str, Any], dict[str, Any]], Mapping[str, Any]] | None = None
    chunk: int | None = None
    table: tuple[Column, ...] | None = None
    render: Callable[[ExperimentResult], Sequence[tuple]] | None = None
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.id:
            raise ValueError("experiment id must be non-empty")
        if self.samples < 1:
            raise ValueError(f"samples must be >= 1, got {self.samples}")
        if self.chunk is not None and self.chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {self.chunk}")
        for key, spec in self.reduce.items():
            resolve_reducer(spec)  # fail fast on typos

    def chunk_size(self, samples: int) -> int:
        """Fixed chunk boundaries: a function of the sample count only."""
        if self.chunk is not None:
            return self.chunk
        return max(1, -(-samples // 8))


class CellExecutionError(RuntimeError):
    """A sample raised inside a worker; carries full experiment context."""


def resolve_workers(workers: int | None = None) -> int:
    """Explicit argument, else ``RRFD_BENCH_WORKERS``, else 1 (in-process).

    Explicit arguments are clamped to ≥ 1 (callers may pass computed
    values); the environment variable, being user input, is validated —
    a non-integer or non-positive setting raises a ``ValueError`` naming
    the variable and the offending value instead of a bare parse error.
    """
    if workers is not None:
        return max(1, int(workers))
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV}={env!r} is not an integer; set it to a "
                "positive worker count (e.g. 4) or unset it"
            ) from None
        if value < 1:
            raise ValueError(
                f"{WORKERS_ENV}={env!r} must be a positive worker count "
                "(≥ 1); unset it for in-process serial execution"
            )
        return value
    return 1


# --------------------------------------------------------------------------
# worker side


def init_worker(parent_path: list[str]) -> None:
    """Process-pool initializer: replay the parent's ``sys.path`` mutations.

    Under the spawn start method the child does not inherit ``sys.path``
    changes (pytest rootdir, PYTHONPATH tweaks); every pool in the repo —
    the harness runner, the check schedulers, the BFS driver — initializes
    workers through this (or composes it into a richer initializer).
    """
    for entry in parent_path:
        if entry not in sys.path:
            sys.path.append(entry)


#: Backwards-compatible alias (pre-scale-out name).
_init_worker = init_worker


@dataclass
class ChunkOutcome:
    """One chunk's reduced states plus its cost and observability payload.

    ``cpu_time`` is the chunk's own compute duration (``perf_counter``
    delta); ``t_begin`` / ``t_end`` are epoch timestamps (``time.time()``),
    comparable across processes, from which the parent derives each cell's
    *true* wall time as ``max(t_end) − min(t_begin)`` over its chunks.
    """

    cell_index: int
    start: int
    states: dict[str, Any]
    cpu_time: float
    t_begin: float
    t_end: float
    records: tuple = ()
    metrics: dict[str, Any] = field(default_factory=dict)
    dropped: int = 0


def _run_chunk(payload: tuple) -> ChunkOutcome:
    """Execute one chunk of samples (the worker entry point).

    When the parent is observing, the chunk traces and meters into *fresh
    chunk-local* instruments — never the parent's — and ships the records
    and the metrics snapshot back in the outcome.  The parent splices them
    in deterministic payload order, so the merged stream is identical
    whether this ran in-process or in a pool worker.
    """
    (experiment_id, run_cell, reduce_spec, cell, cell_index, start, count,
     observe) = payload
    reducers = {key: resolve_reducer(spec) for key, spec in reduce_spec.items()}
    states: dict[str, Any] = {}

    def work() -> None:
        tracer = obs.current_tracer()
        if tracer.enabled:
            tracer.begin(
                "harness.chunk",
                experiment=experiment_id, cell=cell.id, start=start,
                count=count,
            )
        try:
            for index in range(start, start + count):
                ctx = SampleCtx(experiment_id, cell, index)
                try:
                    observed = run_cell(ctx)
                except Exception as exc:
                    raise CellExecutionError(
                        f"{experiment_id} cell {cell.id} sample {index} "
                        f"(seed {ctx.seed}) "
                        f"raised {type(exc).__name__}: {exc}\n"
                        f"{traceback.format_exc()}"
                    ) from None
                for key, value in observed.items():
                    reducer = reducers.get(key)
                    if reducer is None:
                        reducer = reducers[key] = resolve_reducer("last")
                    if key not in states:
                        states[key] = reducer.init()
                    states[key] = reducer.step(states[key], value)
        finally:
            tracer = obs.current_tracer()
            if tracer.enabled:
                tracer.end("harness.chunk", samples=count)

    t_begin = time.time()
    t0 = time.perf_counter()
    if observe:
        local_tracer = obs.Tracer()
        local_metrics = obs.Metrics()
        with obs.tracing(local_tracer), obs.collecting(local_metrics):
            work()
            cpu = time.perf_counter() - t0
            local_metrics.counter("harness.samples").inc(count)
            local_metrics.histogram("harness.chunk_s", env=True).observe(cpu)
        return ChunkOutcome(
            cell_index, start, states, cpu, t_begin, time.time(),
            records=local_tracer.records,
            metrics=local_metrics.snapshot(),
            dropped=local_tracer.dropped,
        )
    work()
    return ChunkOutcome(
        cell_index, start, states, time.perf_counter() - t0,
        t_begin, time.time(),
    )


# --------------------------------------------------------------------------
# parent side


def _plan(exp: Experiment, samples: int, *, observe: bool = False) -> list[tuple]:
    chunk = exp.chunk_size(samples)
    payloads = []
    for cell_index, cell in enumerate(exp.grid.cells):
        start = 0
        while start < samples:
            count = min(chunk, samples - start)
            payloads.append(
                (exp.id, exp.run_cell, dict(exp.reduce), cell, cell_index,
                 start, count, observe)
            )
            start += count
    return payloads


def _merge_cells(
    exp: Experiment,
    samples: int,
    outcomes: Sequence[ChunkOutcome],
) -> list[CellResult]:
    reducers = {key: resolve_reducer(spec) for key, spec in exp.reduce.items()}
    by_cell: dict[int, list[ChunkOutcome]] = {}
    for outcome in outcomes:
        by_cell.setdefault(outcome.cell_index, []).append(outcome)
    cells = []
    for cell_index, cell in enumerate(exp.grid.cells):
        chunks = sorted(by_cell.get(cell_index, ()), key=lambda o: o.start)
        merged: dict[str, Any] = {}
        # cpu_time: the summed compute cost of the cell's chunks.
        # wall_time: the true elapsed span — concurrent chunks overlap, so
        # this is max(end) − min(begin), not the sum (which previously
        # reported aggregate CPU as "wall" and could exceed the
        # experiment's own total).
        cpu = 0.0
        for outcome in chunks:
            cpu += outcome.cpu_time
            for key, state in outcome.states.items():
                reducer = reducers.get(key) or resolve_reducer("last")
                reducers.setdefault(key, reducer)
                if key in merged:
                    merged[key] = reducer.merge(merged[key], state)
                else:
                    merged[key] = state
        wall = (
            max(o.t_end for o in chunks) - min(o.t_begin for o in chunks)
            if chunks else 0.0
        )
        value = {
            key: (reducers.get(key) or resolve_reducer("last")).final(state)
            for key, state in merged.items()
        }
        if exp.finalize is not None:
            value = {**value, **exp.finalize(cell.params, value)}
        cells.append(
            CellResult(
                experiment=exp.id,
                cell=cell,
                samples=samples,
                value=value,
                wall_time=max(0.0, wall),
                cpu_time=cpu,
            )
        )
    return cells


def run_experiment(
    exp: Experiment,
    *,
    samples: int | None = None,
    workers: int | None = None,
) -> ExperimentResult:
    """Run every cell of ``exp`` and reduce to an :class:`ExperimentResult`.

    ``samples`` overrides the experiment's default per-cell sample count;
    ``workers`` overrides :func:`resolve_workers`.  Results are identical
    for every worker count by construction.
    """
    effective_samples = exp.samples if samples is None else max(1, int(samples))
    effective_workers = resolve_workers(workers)
    tracer = obs.current_tracer()
    metrics = obs.current_metrics()
    observe = tracer.enabled or metrics.enabled
    payloads = _plan(exp, effective_samples, observe=observe)
    if tracer.enabled:
        # Worker count is environmental: it must not show up in the
        # deterministic attrs, or traces would differ across --workers.
        tracer.begin(
            "harness.experiment",
            experiment=exp.id, cells=len(exp.grid.cells),
            samples=effective_samples,
        )
    t0 = time.perf_counter()
    try:
        if effective_workers <= 1 or len(payloads) <= 1:
            outcomes = [_run_chunk(payload) for payload in payloads]
            used_workers = 1
        else:
            used_workers = min(effective_workers, len(payloads))
            with ProcessPoolExecutor(
                max_workers=used_workers,
                initializer=_init_worker,
                initargs=(list(sys.path),),
            ) as pool:
                # pool.map preserves payload order: chunk observability is
                # spliced back exactly as a serial run would have emitted it.
                outcomes = list(pool.map(_run_chunk, payloads))
        wall = time.perf_counter() - t0
        for outcome in outcomes:
            if tracer.enabled and outcome.records:
                tracer.absorb(outcome.records)
                tracer.dropped += outcome.dropped
            if metrics.enabled and outcome.metrics:
                metrics.merge(outcome.metrics)
        cells = _merge_cells(exp, effective_samples, outcomes)
    finally:
        if tracer.enabled:
            tracer.end("harness.experiment", cells=len(exp.grid.cells))
    meta: dict[str, Any] = {"notes": exp.notes} if exp.notes else {}
    if metrics.enabled:
        metrics.gauge("harness.workers", env=True).set(used_workers)
        meta["metrics"] = metrics.to_doc()
    return ExperimentResult(
        experiment=exp.id,
        title=exp.title,
        cells=tuple(cells),
        samples=effective_samples,
        workers=used_workers,
        wall_time=wall,
        meta=meta,
    )


def run_one_cell(
    exp: Experiment,
    params: Mapping[str, Any] | None = None,
    *,
    samples: int | None = None,
    **axis_values: Any,
) -> CellResult:
    """Run a single cell in-process (the pytest-benchmark entry point).

    The cell may be ad hoc — any parameter assignment ``run_cell`` accepts —
    not just a member of the experiment's grid, so parametrized benchmark
    tests can probe points the report table does not sweep.
    """
    merged = {**(dict(params) if params else {}), **axis_values}
    cell = Cell(merged)
    effective_samples = exp.samples if samples is None else max(1, int(samples))
    probe = Experiment(
        id=exp.id,
        title=exp.title,
        grid=Grid(tuple(cell), [cell]),
        run_cell=exp.run_cell,
        samples=effective_samples,
        reduce=exp.reduce,
        finalize=exp.finalize,
        chunk=exp.chunk,
        notes=exp.notes,
    )
    result = run_experiment(probe, workers=1)
    return result.cells[0]


def experiment_tables(
    exp: Experiment, result: ExperimentResult
) -> list[tuple[str, list[str], list[list[Any]]]]:
    """The experiment's report tables as ``(title, header, rows)`` triples.

    Shared by the pytest terminal report and the ``repro bench`` CLI so
    both surfaces print the same paper-style tables.
    """
    if exp.render is not None:
        return [tuple(t) for t in exp.render(result)]
    if exp.table is not None:
        header, rows = result.table(exp.table)
        return [(result.title, header, rows)]
    import json as _json

    return [(
        result.title,
        ["cell", "value"],
        [[c.cell.id, _json.dumps(c.value, sort_keys=True)] for c in result.cells],
    )]


def run_with_speedup(
    exp: Experiment,
    *,
    samples: int | None = None,
    workers: int | None = None,
) -> ExperimentResult:
    """Run serially, then with ``workers`` processes; verify the values are
    identical and attach the measured speedup to the parallel result."""
    serial = run_experiment(exp, samples=samples, workers=1)
    parallel = run_experiment(exp, samples=samples, workers=workers)
    mismatched = [
        s.cell.id
        for s, p in zip(serial.cells, parallel.cells)
        if s.value != p.value
    ]
    if mismatched:
        raise AssertionError(
            f"{exp.id}: parallel run diverged from serial on cells {mismatched} "
            "— a run_cell is drawing randomness outside its SampleCtx"
        )
    speedup = {
        "serial_wall_time_s": serial.wall_time,
        "parallel_wall_time_s": parallel.wall_time,
        "workers": parallel.workers,
        "speedup": (serial.wall_time / parallel.wall_time)
        if parallel.wall_time > 0 else None,
    }
    return ExperimentResult(
        experiment=parallel.experiment,
        title=parallel.title,
        cells=parallel.cells,
        samples=parallel.samples,
        workers=parallel.workers,
        wall_time=parallel.wall_time,
        meta={**parallel.meta, "speedup": speedup},
    )
