"""Typed experiment results, declarative reducers, and shape checks.

A benchmark sample returns a small dict of observations; a *reducer* folds
those per-sample dicts into one per-cell value.  Reducers are written as
``init / step / merge / final`` so a cell's samples can be split into
chunks, reduced independently (possibly in different worker processes) and
merged back — exactly, so the merged result is bit-identical to a serial
fold.  That property (plus fixed chunk boundaries) is what makes
``--workers 1`` and ``--workers N`` produce the same JSON.

:class:`CellResult` / :class:`ExperimentResult` carry the reduced values
together with wall-time and throughput, and provide the *paper-shape
assertion* hook: :meth:`ExperimentResult.check` runs a predicate over every
cell and converts a bare ``AssertionError`` into a :class:`ShapeError`
naming the experiment and cell that broke the paper's predicted shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence, Union

from repro.harness.grid import Cell

__all__ = [
    "Reducer",
    "REDUCERS",
    "resolve_reducer",
    "CellResult",
    "ExperimentResult",
    "ShapeError",
    "Column",
    "render_table",
]


# --------------------------------------------------------------------------
# reducers


class Reducer:
    """An exact, mergeable fold over per-sample observations.

    ``merge(a, b)`` must equal folding b's samples after a's — chunks are
    always merged in sample order, so any associative-in-order fold
    (max, sum, last, ...) round-trips exactly through chunking.
    """

    name = "reducer"

    def init(self) -> Any:
        raise NotImplementedError

    def step(self, state: Any, value: Any) -> Any:
        raise NotImplementedError

    def merge(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def final(self, state: Any) -> Any:
        raise NotImplementedError


_MISSING = ("__rrfd_missing__",)


class _Extremum(Reducer):
    def __init__(self, name: str, pick: Callable[[Any, Any], Any]):
        self.name = name
        self._pick = pick

    def init(self) -> Any:
        return _MISSING

    def step(self, state: Any, value: Any) -> Any:
        return value if state is _MISSING else self._pick(state, value)

    def merge(self, a: Any, b: Any) -> Any:
        if a is _MISSING:
            return b
        if b is _MISSING:
            return a
        return self._pick(a, b)

    def final(self, state: Any) -> Any:
        return None if state is _MISSING else state


class _Sum(Reducer):
    name = "sum"

    def init(self) -> Any:
        return 0

    def step(self, state: Any, value: Any) -> Any:
        return state + value

    def merge(self, a: Any, b: Any) -> Any:
        return a + b

    def final(self, state: Any) -> Any:
        return state


class _Any(Reducer):
    name = "any"

    def init(self) -> bool:
        return False

    def step(self, state: bool, value: Any) -> bool:
        return state or bool(value)

    def merge(self, a: bool, b: bool) -> bool:
        return a or b

    def final(self, state: bool) -> bool:
        return state


class _All(Reducer):
    name = "all"

    def init(self) -> bool:
        return True

    def step(self, state: bool, value: Any) -> bool:
        return state and bool(value)

    def merge(self, a: bool, b: bool) -> bool:
        return a and b

    def final(self, state: bool) -> bool:
        return state


class _Edge(Reducer):
    """``last`` / ``first``: keep one end of the sample order."""

    def __init__(self, name: str, keep_last: bool):
        self.name = name
        self._keep_last = keep_last

    def init(self) -> Any:
        return _MISSING

    def step(self, state: Any, value: Any) -> Any:
        if self._keep_last:
            return value
        return value if state is _MISSING else state

    def merge(self, a: Any, b: Any) -> Any:
        if self._keep_last:
            return a if b is _MISSING else b
        return b if a is _MISSING else a

    def final(self, state: Any) -> Any:
        return None if state is _MISSING else state


class _Mean(Reducer):
    name = "mean"

    def init(self) -> tuple[float, int]:
        return (0.0, 0)

    def step(self, state: tuple[float, int], value: Any) -> tuple[float, int]:
        return (state[0] + value, state[1] + 1)

    def merge(self, a: tuple[float, int], b: tuple[float, int]) -> tuple[float, int]:
        return (a[0] + b[0], a[1] + b[1])

    def final(self, state: tuple[float, int]) -> float | None:
        return None if state[1] == 0 else state[0] / state[1]


class _RateReducer(Reducer):
    """Truthy-sample fraction, kept as exact counts for interval rendering."""

    name = "rate"

    def init(self) -> tuple[int, int]:
        return (0, 0)

    def step(self, state: tuple[int, int], value: Any) -> tuple[int, int]:
        return (state[0] + bool(value), state[1] + 1)

    def merge(self, a: tuple[int, int], b: tuple[int, int]) -> tuple[int, int]:
        return (a[0] + b[0], a[1] + b[1])

    def final(self, state: tuple[int, int]) -> dict[str, Any]:
        hits, trials = state
        return {
            "hits": hits,
            "trials": trials,
            "rate": hits / trials if trials else None,
        }


class _Collect(Reducer):
    name = "collect"

    def init(self) -> list:
        return []

    def step(self, state: list, value: Any) -> list:
        state.append(value)
        return state

    def merge(self, a: list, b: list) -> list:
        return a + b

    def final(self, state: list) -> list:
        return state


REDUCERS: dict[str, Reducer] = {
    "max": _Extremum("max", max),
    "min": _Extremum("min", min),
    "sum": _Sum(),
    "any": _Any(),
    "all": _All(),
    "last": _Edge("last", keep_last=True),
    "first": _Edge("first", keep_last=False),
    "mean": _Mean(),
    "rate": _RateReducer(),
    "collect": _Collect(),
}


def resolve_reducer(spec: Union[str, Reducer]) -> Reducer:
    if isinstance(spec, Reducer):
        return spec
    try:
        return REDUCERS[spec]
    except KeyError:
        raise KeyError(
            f"unknown reducer {spec!r}; available: {sorted(REDUCERS)}"
        ) from None


# --------------------------------------------------------------------------
# results


class ShapeError(AssertionError):
    """A cell's result contradicts the paper's predicted shape."""

    def __init__(self, experiment: str, cell_id: str, detail: str):
        super().__init__(f"[{experiment} cell {cell_id}] {detail}")
        self.experiment = experiment
        self.cell_id = cell_id
        self.detail = detail


@dataclass(frozen=True)
class CellResult:
    """One grid cell's reduced observations plus its cost.

    ``wall_time`` is the cell's true elapsed span (its chunks may run
    concurrently, so this can be far less than the compute spent);
    ``cpu_time`` is the summed compute duration of the cell's chunks.
    """

    experiment: str
    cell: Cell
    samples: int
    value: dict[str, Any]
    wall_time: float
    cpu_time: float = 0.0

    @property
    def params(self) -> dict[str, Any]:
        return self.cell.params

    @property
    def samples_per_s(self) -> float | None:
        """Throughput against compute time (stable across worker counts)."""
        basis = self.cpu_time if self.cpu_time > 0 else self.wall_time
        if basis <= 0:
            return None
        return self.samples / basis

    def get(self, key: str, default: Any = None) -> Any:
        """Look ``key`` up in the reduced value, then the cell parameters."""
        if key in self.value:
            return self.value[key]
        if key in self.cell:
            return self.cell[key]
        return default

    def __getitem__(self, key: str) -> Any:
        if key in self.value:
            return self.value[key]
        return self.cell[key]


# a table column: (header, key-or-callable over CellResult)
Column = tuple[str, Union[str, Callable[[CellResult], Any]]]


@dataclass(frozen=True)
class ExperimentResult:
    """All cells of one experiment run, with run-level metadata."""

    experiment: str
    title: str
    cells: tuple[CellResult, ...]
    samples: int
    workers: int
    wall_time: float
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def total_samples(self) -> int:
        return sum(cell.samples for cell in self.cells)

    @property
    def samples_per_s(self) -> float | None:
        if self.wall_time <= 0:
            return None
        return self.total_samples / self.wall_time

    def cell(self, **params: Any) -> CellResult:
        """The unique cell matching every given parameter."""
        matches = [
            c for c in self.cells
            if all(c.cell.get(k) == v for k, v in params.items())
        ]
        if len(matches) != 1:
            raise KeyError(
                f"{self.experiment}: {len(matches)} cells match {params!r}"
            )
        return matches[0]

    def values(self, key: str) -> list[Any]:
        return [cell[key] for cell in self.cells]

    def check(
        self, assertion: Callable[[CellResult], Any], what: str = "paper shape"
    ) -> "ExperimentResult":
        """Run a per-cell shape assertion; raise :class:`ShapeError` with context.

        The assertion may either raise ``AssertionError`` itself or return a
        truthiness verdict (``None`` counts as success, so plain ``assert``
        bodies work too).
        """
        for cell in self.cells:
            try:
                verdict = assertion(cell)
            except AssertionError as exc:
                detail = str(exc) or what
                raise ShapeError(self.experiment, cell.cell.id, detail) from exc
            if verdict is not None and not verdict:
                raise ShapeError(self.experiment, cell.cell.id, what)
        return self

    def table(self, columns: Sequence[Column]) -> tuple[list[str], list[list[Any]]]:
        """Render ``(header, rows)`` from a column spec, one row per cell."""
        header = [name for name, _ in columns]
        rows = []
        for cell in self.cells:
            row = []
            for _, source in columns:
                row.append(source(cell) if callable(source) else cell.get(source))
            rows.append(row)
        return header, rows


def render_table(title: str, header: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Plain-text table, the same layout the pytest terminal report uses."""
    text_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in text_rows)) if text_rows
        else len(header[i])
        for i in range(len(header))
    ]
    lines = [title]
    lines.append("  " + "  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  " + "  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  " + "  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
