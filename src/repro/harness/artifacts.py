"""Machine-readable benchmark artifacts with a stable, validated schema.

Each experiment run can be persisted as ``BENCH_<id>.json`` and merged into
``BENCH_SUMMARY.json`` — the perf trajectory ROADMAP.md asks for: every
future optimisation PR reruns the bench and diffs these files.

Schema ``rrfd-bench-v1`` separates the *deterministic* payload from the
*environmental* one:

* ``results`` — cell parameters, sample counts, reduced values.  A function
  of (experiment, samples, seed derivation) only; bit-identical across
  worker counts and machines.
* ``timing`` — wall-times, throughput, worker count, optional serial-vs-
  parallel speedup.  Varies run to run.

:func:`canonical_payload` strips the environmental half, which is what the
parallel-determinism test (and CI) compares across worker counts.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path
from typing import Any

from repro.harness.results import ExperimentResult

__all__ = [
    "BENCH_SCHEMA",
    "SUMMARY_SCHEMA",
    "ArtifactError",
    "experiment_to_doc",
    "canonical_payload",
    "validate_bench_doc",
    "summarize",
    "write_experiment",
    "write_summary",
    "load_doc",
]

BENCH_SCHEMA = "rrfd-bench-v1"
SUMMARY_SCHEMA = "rrfd-bench-summary-v1"


class ArtifactError(ValueError):
    """A bench document does not conform to the schema."""


def _check_json_value(value: Any, where: str, problems: list[str]) -> None:
    if value is None or isinstance(value, (bool, int, float, str)):
        return
    if isinstance(value, list):
        for i, item in enumerate(value):
            _check_json_value(item, f"{where}[{i}]", problems)
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                problems.append(f"{where}: non-string key {key!r}")
            _check_json_value(item, f"{where}.{key}", problems)
        return
    problems.append(f"{where}: non-JSON value of type {type(value).__name__}")


def experiment_to_doc(result: ExperimentResult) -> dict[str, Any]:
    """The JSON document for one experiment run."""
    axes = list(result.cells[0].cell) if result.cells else []
    doc: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "experiment": result.experiment,
        "title": result.title,
        "samples": result.samples,
        "axes": axes,
        "results": {
            "cells": [
                {
                    "params": cell.params,
                    "samples": cell.samples,
                    # a copy: callers may annotate the doc without mutating
                    # the CellResult it came from
                    "value": copy.deepcopy(cell.value),
                }
                for cell in result.cells
            ],
        },
        "timing": {
            "workers": result.workers,
            "wall_time_s": result.wall_time,
            "cpu_time_s": sum(cell.cpu_time for cell in result.cells),
            "samples_per_s": result.samples_per_s,
            "cells": [
                {
                    "params": cell.params,
                    "wall_time_s": cell.wall_time,
                    "cpu_time_s": cell.cpu_time,
                    "samples_per_s": cell.samples_per_s,
                }
                for cell in result.cells
            ],
        },
    }
    notes = result.meta.get("notes")
    if notes:
        doc["notes"] = notes
    speedup = result.meta.get("speedup")
    if speedup:
        doc["timing"]["speedup"] = speedup
    metrics = result.meta.get("metrics")
    if metrics:
        # values: deterministic (merged counters — worker-count invariant);
        # env: environmental (wall-clock histograms, worker gauges).
        doc["metrics"] = copy.deepcopy(metrics)
    return doc


def canonical_payload(doc: dict[str, Any]) -> dict[str, Any]:
    """The worker-count-invariant half of a bench document."""
    payload = {
        "schema": doc["schema"],
        "experiment": doc["experiment"],
        "title": doc["title"],
        "samples": doc["samples"],
        "axes": doc["axes"],
        "results": doc["results"],
    }
    metrics = doc.get("metrics")
    if isinstance(metrics, dict) and "values" in metrics:
        # Only the deterministic half participates; metrics["env"] holds
        # the wall-clock observations.
        payload["metrics"] = metrics["values"]
    return payload


def validate_bench_doc(doc: Any) -> list[str]:
    """Every way ``doc`` fails schema ``rrfd-bench-v1`` (empty = valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, expected object"]
    if doc.get("schema") != BENCH_SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected {BENCH_SCHEMA!r}")
    for key, kind in (
        ("experiment", str), ("title", str), ("samples", int), ("axes", list),
        ("results", dict), ("timing", dict),
    ):
        if not isinstance(doc.get(key), kind):
            problems.append(f"{key}: missing or not a {kind.__name__}")
    if problems:
        return problems
    axes = doc["axes"]
    if not all(isinstance(a, str) for a in axes):
        problems.append("axes: entries must be strings")
    cells = doc["results"].get("cells")
    if not isinstance(cells, list):
        return problems + ["results.cells: missing or not a list"]
    for i, cell in enumerate(cells):
        where = f"results.cells[{i}]"
        if not isinstance(cell, dict):
            problems.append(f"{where}: not an object")
            continue
        params = cell.get("params")
        if not isinstance(params, dict):
            problems.append(f"{where}.params: missing or not an object")
        elif sorted(params) != sorted(axes):
            # order-insensitive: json.dumps(sort_keys=True) alphabetises
            # params on disk while ``axes`` preserves declaration order
            problems.append(
                f"{where}.params keys {sorted(params)} do not match axes "
                f"{sorted(axes)}"
            )
        if not isinstance(cell.get("samples"), int) or cell.get("samples") < 1:
            problems.append(f"{where}.samples: missing or not a positive int")
        if not isinstance(cell.get("value"), dict):
            problems.append(f"{where}.value: missing or not an object")
        else:
            _check_json_value(cell["value"], f"{where}.value", problems)
    timing = doc["timing"]
    for key in ("workers", "wall_time_s"):
        if not isinstance(timing.get(key), (int, float)):
            problems.append(f"timing.{key}: missing or not a number")
    metrics = doc.get("metrics")
    if metrics is not None:
        if (
            not isinstance(metrics, dict)
            or not isinstance(metrics.get("values"), dict)
            or not isinstance(metrics.get("env"), dict)
        ):
            problems.append(
                "metrics: must be an object with 'values' and 'env' objects"
            )
        else:
            _check_json_value(metrics, "metrics", problems)
    return problems


def _validated(doc: dict[str, Any]) -> dict[str, Any]:
    problems = validate_bench_doc(doc)
    if problems:
        raise ArtifactError(
            "bench document violates rrfd-bench-v1:\n  " + "\n  ".join(problems)
        )
    return doc


def summarize(docs: list[dict[str, Any]]) -> dict[str, Any]:
    """Merge per-experiment docs into the ``BENCH_SUMMARY.json`` document."""
    experiments: dict[str, Any] = {}
    for doc in docs:
        _validated(doc)
        timing = doc["timing"]
        entry: dict[str, Any] = {
            "title": doc["title"],
            "cells": len(doc["results"]["cells"]),
            "samples_per_cell": doc["samples"],
            "total_samples": sum(c["samples"] for c in doc["results"]["cells"]),
            "wall_time_s": timing["wall_time_s"],
            "samples_per_s": timing.get("samples_per_s"),
            "workers": timing["workers"],
        }
        if "speedup" in timing:
            entry["speedup"] = timing["speedup"]
        experiments[doc["experiment"]] = entry
    return {
        "schema": SUMMARY_SCHEMA,
        "experiments": dict(sorted(experiments.items())),
        "total_wall_time_s": sum(e["wall_time_s"] for e in experiments.values()),
    }


def _write_json(doc: dict[str, Any], path: Path) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def write_experiment(result: ExperimentResult, out_dir: str | Path) -> Path:
    """Write ``BENCH_<id>.json`` for one run; validates before writing."""
    doc = _validated(experiment_to_doc(result))
    return _write_json(doc, Path(out_dir) / f"BENCH_{result.experiment}.json")


def write_summary(docs: list[dict[str, Any]], out_dir: str | Path) -> Path:
    """Write the merged ``BENCH_SUMMARY.json``."""
    return _write_json(summarize(docs), Path(out_dir) / "BENCH_SUMMARY.json")


def load_doc(path: str | Path) -> dict[str, Any]:
    """Load and validate a ``BENCH_*.json`` document."""
    return _validated(json.loads(Path(path).read_text()))
