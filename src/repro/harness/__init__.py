"""The unified experiment harness.

Declarative grids (:mod:`~repro.harness.grid`), seed-deterministic and
process-parallel execution (:mod:`~repro.harness.runner`), typed results
with paper-shape assertions (:mod:`~repro.harness.results`), and stable
machine-readable JSON artifacts (:mod:`~repro.harness.artifacts`).

A benchmark module declares::

    EXPERIMENT = Experiment(
        id="E1",
        title="E1 (Thm 3.1): ...",
        grid=Grid.explicit("n,k", [(4, 1), (8, 2)]),
        run_cell=run_cell,            # pure, top-level, one seeded sample
        samples=200,
        reduce={"distinct": "max"},
        table=(("n", "n"), ("k", "k"), ("max distinct", "distinct")),
    )

and everything else — the sample loop, the worker fan-out, determinism
across worker counts, report tables, BENCH_*.json — is the harness's job.
"""

from repro.harness.artifacts import (
    ArtifactError,
    canonical_payload,
    experiment_to_doc,
    load_doc,
    summarize,
    validate_bench_doc,
    write_experiment,
    write_summary,
)
from repro.harness.grid import Cell, Grid
from repro.harness.results import (
    CellResult,
    ExperimentResult,
    REDUCERS,
    Reducer,
    ShapeError,
    render_table,
)
from repro.harness.runner import (
    CellExecutionError,
    Experiment,
    SampleCtx,
    WORKERS_ENV,
    experiment_tables,
    resolve_workers,
    run_experiment,
    run_one_cell,
    run_with_speedup,
)

__all__ = [
    "ArtifactError",
    "Cell",
    "CellExecutionError",
    "CellResult",
    "Experiment",
    "ExperimentResult",
    "Grid",
    "REDUCERS",
    "Reducer",
    "SampleCtx",
    "ShapeError",
    "WORKERS_ENV",
    "canonical_payload",
    "experiment_tables",
    "experiment_to_doc",
    "load_doc",
    "render_table",
    "resolve_workers",
    "run_experiment",
    "run_one_cell",
    "run_with_speedup",
    "summarize",
    "validate_bench_doc",
    "write_experiment",
    "write_summary",
]
