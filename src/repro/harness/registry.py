"""Discover experiment declarations from the ``benchmarks`` package.

Bench modules declare module-level :class:`~repro.harness.runner.Experiment`
instances; this registry imports every ``benchmarks/bench_*.py`` and
collects them, keyed by experiment id.  Both the pytest suite and the
``python -m repro bench`` CLI resolve experiments through here, so there is
exactly one definition of each sweep.

``benchmarks`` is repo-level code (not installed with the library); when it
is not already importable the loader searches the working directory and the
``RRFD_BENCH_PATH`` environment variable for it.
"""

from __future__ import annotations

import importlib
import os
import pkgutil
import re
import sys
from pathlib import Path

from repro.harness.runner import Experiment

__all__ = ["load_experiments", "select", "experiment_sort_key", "BENCH_PATH_ENV"]

BENCH_PATH_ENV = "RRFD_BENCH_PATH"


def _import_package(package: str):
    try:
        return importlib.import_module(package)
    except ImportError:
        pass
    candidates = []
    env = os.environ.get(BENCH_PATH_ENV, "").strip()
    if env:
        candidates.append(Path(env))
    candidates.append(Path.cwd())
    for root in candidates:
        if (root / package / "__init__.py").is_file():
            entry = str(root)
            if entry not in sys.path:
                sys.path.insert(0, entry)
            return importlib.import_module(package)
    raise ImportError(
        f"cannot import the {package!r} package; run from the repository root "
        f"or point {BENCH_PATH_ENV} at the directory containing it"
    )


def experiment_sort_key(exp_id: str) -> tuple:
    """Natural order: E2 before E10, suffixed ids (E6b) after their base."""
    match = re.fullmatch(r"([A-Za-z]*)(\d+)(.*)", exp_id)
    if match:
        prefix, number, suffix = match.groups()
        return (prefix.upper(), int(number), suffix)
    return (exp_id.upper(), 0, "")


def load_experiments(package: str = "benchmarks") -> dict[str, Experiment]:
    """Import every ``bench_*`` module and collect its experiments."""
    pkg = _import_package(package)
    found: dict[str, Experiment] = {}
    owners: dict[str, str] = {}
    for info in pkgutil.iter_modules(pkg.__path__):
        if not info.name.startswith("bench_"):
            continue
        module = importlib.import_module(f"{package}.{info.name}")
        for attr in vars(module).values():
            if not isinstance(attr, Experiment):
                continue
            if attr.id in found and found[attr.id] is not attr:
                raise ValueError(
                    f"experiment id {attr.id!r} declared in both "
                    f"{owners[attr.id]} and {info.name}"
                )
            found[attr.id] = attr
            owners[attr.id] = info.name
    return dict(sorted(found.items(), key=lambda kv: experiment_sort_key(kv[0])))


def select(
    registry: dict[str, Experiment], ids: list[str] | None
) -> list[Experiment]:
    """Resolve requested ids (case-insensitive); empty/None selects all.

    A bare base id selects its variants too: ``E6`` picks E6 and E6b.
    """
    if not ids:
        return list(registry.values())
    by_lower = {key.lower(): key for key in registry}
    chosen: dict[str, Experiment] = {}
    for requested in ids:
        needle = requested.lower()
        hits = [
            key for low, key in by_lower.items()
            if low == needle or low.startswith(needle) and low[len(needle):].isalpha()
        ]
        if not hits:
            raise KeyError(
                f"unknown experiment {requested!r}; available: "
                + ", ".join(registry)
            )
        for key in hits:
            chosen[key] = registry[key]
    return sorted(chosen.values(), key=lambda e: experiment_sort_key(e.id))
