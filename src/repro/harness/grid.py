"""Declarative experiment grids: named axes, enumerable cells.

Every experiment in ``benchmarks/`` sweeps a small parameter space — the
``(n, k)`` pairs of Theorem 3.1, the ``(f, k)`` pairs of the simulations,
the ``(drop, f)`` chaos grid.  A :class:`Grid` names those axes and
enumerates the :class:`Cell`\\ s, so the runner can fan the sweep out across
worker processes, the artifact writer can emit a stable JSON record of what
was swept, and a cell's identity (``"n=4,k=2"``) can seed its randomness
deterministically.

Cells carry only JSON-scalar parameter values (int/float/str/bool).  A cell
whose parameter is conceptually an object (a model predicate, a protocol
factory) names it with a string and lets ``run_cell`` resolve the name —
that keeps every cell printable, serialisable and picklable.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from itertools import product as _product
from typing import Any, Sequence

__all__ = ["Cell", "Grid"]

_SCALARS = (bool, int, float, str)


def _check_scalar(axis: str, value: Any) -> Any:
    if value is None or isinstance(value, _SCALARS):
        return value
    raise TypeError(
        f"grid axis {axis!r} holds a {type(value).__name__}; cells carry "
        "JSON scalars only (name objects with strings and resolve them in "
        "run_cell)"
    )


class Cell(Mapping):
    """One point of a grid: an ordered, immutable ``axis → value`` mapping."""

    __slots__ = ("_items",)

    def __init__(self, items: Mapping[str, Any] | Sequence[tuple[str, Any]]):
        pairs = tuple(items.items()) if isinstance(items, Mapping) else tuple(items)
        seen: set[str] = set()
        for axis, value in pairs:
            if axis in seen:
                raise ValueError(f"duplicate axis {axis!r} in cell")
            seen.add(axis)
            _check_scalar(axis, value)
        self._items: tuple[tuple[str, Any], ...] = pairs

    # Mapping protocol -----------------------------------------------------
    def __getitem__(self, axis: str) -> Any:
        for name, value in self._items:
            if name == axis:
                return value
        raise KeyError(axis)

    def __iter__(self) -> Iterator[str]:
        return iter(name for name, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        return hash(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Cell):
            return self._items == other._items
        return Mapping.__eq__(self, other)  # type: ignore[misc]

    # identity -------------------------------------------------------------
    @property
    def id(self) -> str:
        """Stable string identity, e.g. ``"n=4,k=2"`` — axis order preserved."""
        return ",".join(f"{name}={value}" for name, value in self._items)

    @property
    def params(self) -> dict[str, Any]:
        """A plain dict copy (JSON-ready)."""
        return dict(self._items)

    def __repr__(self) -> str:
        return f"Cell({self.id})"


class Grid:
    """A named-axis sweep: the declarative half of an experiment.

    Construction styles::

        Grid.product(n=[4, 8], k=[1, 2])        # cartesian product, 4 cells
        Grid.explicit("n,k", [(4, 1), (8, 2)])  # hand-picked cells
        Grid.zip(n=[4, 8], f=[1, 3])            # paired axes, 2 cells
        Grid.single(n=8)                        # one cell
    """

    __slots__ = ("axes", "cells")

    def __init__(self, axes: Sequence[str], cells: Sequence[Cell]):
        self.axes: tuple[str, ...] = tuple(axes)
        for cell in cells:
            if tuple(cell) != self.axes:
                raise ValueError(
                    f"cell axes {tuple(cell)} do not match grid axes {self.axes}"
                )
        if len({cell.id for cell in cells}) != len(cells):
            raise ValueError("grid contains duplicate cells")
        self.cells: tuple[Cell, ...] = tuple(cells)

    @classmethod
    def product(cls, **axes: Sequence[Any]) -> "Grid":
        names = tuple(axes)
        cells = [
            Cell(tuple(zip(names, combo)))
            for combo in _product(*(tuple(values) for values in axes.values()))
        ]
        return cls(names, cells)

    @classmethod
    def zip(cls, **axes: Sequence[Any]) -> "Grid":
        names = tuple(axes)
        lengths = {len(tuple(v)) for v in axes.values()}
        if len(lengths) > 1:
            raise ValueError(f"zip axes have unequal lengths {sorted(lengths)}")
        cells = [Cell(tuple(zip(names, combo))) for combo in zip(*axes.values())]
        return cls(names, cells)

    @classmethod
    def explicit(
        cls, axes: str | Sequence[str], rows: Sequence[Sequence[Any] | Any]
    ) -> "Grid":
        names = tuple(a.strip() for a in axes.split(",")) if isinstance(axes, str) \
            else tuple(axes)
        cells = []
        for row in rows:
            values = (row,) if len(names) == 1 and not isinstance(row, (tuple, list)) \
                else tuple(row)
            if len(values) != len(names):
                raise ValueError(f"row {row!r} does not fill axes {names}")
            cells.append(Cell(tuple(zip(names, values))))
        return cls(names, cells)

    @classmethod
    def single(cls, **params: Any) -> "Grid":
        return cls(tuple(params), [Cell(params)])

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    def __repr__(self) -> str:
        return f"Grid(axes={self.axes}, cells={len(self.cells)})"
