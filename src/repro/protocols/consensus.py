"""Consensus in RRFD systems: the ``k = 1`` face of Theorem 3.1.

For ``k = 1``, the k-set detector's bound ``|⋃D − ⋂D| < 1`` forces the
detectors at different processes to agree *exactly* each round
(:class:`repro.core.predicates.SemiSyncEquality`).  One round of Theorem
3.1's algorithm then solves consensus: everyone trusts the same lowest-id
process and adopts its value.

Section 5 shows the semi-synchronous model of Dolev–Dwork–Stockmeyer
implements this detector with two steps per round, giving the paper's
2-step consensus (see :mod:`repro.protocols.semisync_consensus`).

The module also provides :class:`FloodSetConsensusProcess`, the classic
``f + 1``-round synchronous consensus used as the baseline that Corollary
4.2 (with ``k = 1``: the Fischer–Lynch ``f + 1`` lower bound) proves
optimal.
"""

from __future__ import annotations

from typing import Any

from repro.core.algorithm import Protocol, make_protocol
from repro.protocols.floodset import FloodMinProcess
from repro.protocols.kset import KSetAgreementProcess

__all__ = ["ConsensusProcess", "consensus_protocol", "FloodSetConsensusProcess", "floodset_consensus_protocol"]


class ConsensusProcess(KSetAgreementProcess):
    """One-round consensus: Theorem 3.1's algorithm run where ``k = 1``.

    Identical code to k-set agreement — agreement strength comes entirely
    from the model predicate, which is the paper's central point.
    """


def consensus_protocol() -> Protocol:
    """One-round consensus under ``KSetDetector(k=1)`` / ``SemiSyncEquality``."""
    return make_protocol(ConsensusProcess, name="consensus-one-round")


class FloodSetConsensusProcess(FloodMinProcess):
    """Classic synchronous consensus: flood for ``f + 1`` rounds, decide min.

    The ``k = 1`` instance of FloodMin.  Under at most ``f`` crashes there is
    a crash-free round among any ``f + 1``, after which all alive processes
    hold the same minimum.
    """

    def __init__(self, pid: int, n: int, input_value: Any, *, f: int) -> None:
        super().__init__(pid, n, input_value, f=f, k=1)


def floodset_consensus_protocol(f: int) -> Protocol:
    """Synchronous ``f + 1``-round consensus (FloodSet/FloodMin with k=1)."""
    return make_protocol(FloodSetConsensusProcess, name=f"floodset-consensus(f={f})", f=f)
