"""Section 5: consensus in 2 steps in the semi-synchronous model.

Dolev–Dwork–Stockmeyer showed consensus possible in their model with a
``2n``-step algorithm and left open whether an ``O(1)``-step algorithm
exists.  The paper answers: **2 steps suffice**, by showing the model
implements the ``k = 1`` detector of Theorem 3.1 (equation (5):
``D(i, r) = D(j, r)`` for all ``i, j``) with two steps per round, and one
round of that detector solves consensus.

The detector implementation (Theorem 5.1): execution proceeds in blocks of
two steps.

- Step 1 of round ``r``: if the process has already received a round-``r``
  message, it stays *silent* (acts as if it omitted its broadcast);
  otherwise it broadcasts its round-``r`` message.  The model's atomic
  receive/send makes this a read-modify-write.
- Step 2 of round ``r``: the round ends; ``D(i, r)`` is the set of
  processes from which no round-``r`` message arrived.

:class:`TwoStepRRFDAdapter` wraps *any* emit/receive algorithm this way and
records the per-round suspicion sets, so tests can verify equation (5)
directly on executions.  :class:`TwoStepConsensusProcess` plugs in Theorem
3.1's one-round algorithm (decide the value of the lowest-id trusted
process) — total: 2 steps.

:class:`SequentialBaselineProcess` is the ``2n``-step comparison point: it
runs ``n`` such rounds, adopting the broadcaster's value each round, and
decides only after round ``n`` — a natural rendering of a Θ(n)-step
algorithm in this model (the paper does not reproduce DDS's own algorithm;
only its 2n step count matters for the comparison).
"""

from __future__ import annotations

from typing import Any

from repro.core.algorithm import RoundProcess
from repro.core.types import RoundView
from repro.protocols.kset import KSetAgreementProcess
from repro.substrates.semisync.model import StepProcess

__all__ = [
    "TwoStepRRFDAdapter",
    "TwoStepConsensusProcess",
    "SequentialBaselineProcess",
]


class TwoStepRRFDAdapter(StepProcess):
    """Run an emit/receive algorithm at two semi-synchronous steps per round.

    Messages are tagged ``(round, payload)``; early messages are buffered by
    round.  A process that broadcasts counts its own message as received
    ("such a process may know the message it sent through its local state");
    a silent process may legitimately end up in its own ``D(i, r)``.
    """

    def __init__(
        self,
        pid: int,
        n: int,
        input_value: Any,
        round_process: RoundProcess,
        *,
        max_rounds: int,
    ) -> None:
        super().__init__(pid, n, input_value)
        self.round_process = round_process
        self.max_rounds = max_rounds
        self.current_round = 1
        self.step_in_round = 1
        self.pending: dict[int, dict[int, Any]] = {}
        self.views: list[RoundView] = []

    def _stash(self, received: list[tuple[int, Any]]) -> None:
        for src, (round_number, payload) in received:
            self.pending.setdefault(round_number, {})[src] = payload

    def step(self, received: list[tuple[int, Any]]) -> Any | None:
        self._stash(received)
        r = self.current_round
        if self.step_in_round == 1:
            self.step_in_round = 2
            if r in self.pending and self.pending[r]:
                return None  # someone beat us to the round: stay silent
            payload = self.round_process.emit(r)
            self.pending.setdefault(r, {})[self.pid] = payload  # local state
            return (r, payload)
        # Step 2: close the round.
        heard = self.pending.pop(r, {})
        suspected = frozenset(range(self.n)) - frozenset(heard)
        view = RoundView(
            pid=self.pid, round=r, messages=heard, suspected=suspected, n=self.n
        )
        self.views.append(view)
        self.round_process.absorb(view)
        self.current_round += 1
        self.step_in_round = 1
        if self.round_process.decided and self.current_round > self.max_rounds:
            self.decide(self.round_process.decision)
        elif self.current_round > self.max_rounds and not self.round_process.decided:
            raise RuntimeError(
                f"process {self.pid}: round budget {self.max_rounds} exhausted "
                "without a decision"
            )
        return None


class TwoStepConsensusProcess(TwoStepRRFDAdapter):
    """The paper's 2-step consensus: one RRFD round of Theorem 3.1's
    algorithm over the two-step detector implementation."""

    def __init__(self, pid: int, n: int, input_value: Any) -> None:
        super().__init__(
            pid,
            n,
            input_value,
            KSetAgreementProcess(pid, n, input_value),
            max_rounds=1,
        )


class _AdoptLowestForever(RoundProcess):
    """Round behaviour of the baseline: adopt the lowest trusted process's
    value every round; decide at ``deadline`` rounds."""

    def __init__(self, pid: int, n: int, input_value: Any, *, deadline: int) -> None:
        super().__init__(pid, n, input_value)
        self.deadline = deadline
        self.current = input_value

    def emit(self, round_number: int) -> Any:
        return self.current

    def absorb(self, view: RoundView) -> None:
        trusted = sorted(frozenset(range(self.n)) - view.suspected)
        if trusted:
            self.current = view.value_from(trusted[0])
        if view.round >= self.deadline and not self.decided:
            self.decide(self.current)


class SequentialBaselineProcess(TwoStepRRFDAdapter):
    """A ``2n``-step consensus baseline: n two-step rounds, decide at the end.

    Correct for the same reason the 2-step algorithm is (every round's
    detector values agree, so all processes adopt the same value from round
    1 on) — it simply doesn't *know* that and keeps going, which is what a
    Θ(n)-step algorithm looks like from the RRFD vantage point.
    """

    def __init__(self, pid: int, n: int, input_value: Any) -> None:
        super().__init__(
            pid,
            n,
            input_value,
            _AdoptLowestForever(pid, n, input_value, deadline=n),
            max_rounds=n,
        )
