"""Wait-free consensus from ◇S via adopt-commit (reference [16]'s shape).

The paper's acknowledged machinery (Yang–Neiger–Gafni, same proceedings:
"Structured Derivations of Consensus Algorithms for Failure Detectors")
composes exactly the pieces this library already has:

repeat, phase ``p = 1, 2, ...`` with coordinator ``c = p mod n``:

1. write your estimate to the phase's estimate array; if you are not the
   coordinator, wait until you read the coordinator's phase-``p`` estimate
   **or** the failure detector suspects the coordinator; adopt the estimate
   if you got it;
2. run a fresh adopt-commit instance on your (possibly adopted) estimate;
   *commit v* → write ``v`` to the decision board and decide;
   *adopt v* → carry ``v`` into the next phase.

Safety never depends on the detector: the first phase in which anyone
commits ``v`` forces every process to leave that phase holding ``v``
(adopt-commit's agreement property), so all later estimates — and hence all
later commits and coordinator adoptions — are ``v``.  The detector buys
*liveness* only: once some correct process is never again suspected (◇S),
its phase makes everyone adopt one estimate, and unanimity makes
adopt-commit commit.  Every wait also watches the decision board, so a
decided coordinator cannot block anyone.

The detector here is an oracle over the shared-memory substrate
(:class:`DiamondSOracle`): complete (crashed processes are suspected) and
eventually accurate for one designated survivor — arbitrary slander about
everyone else, forever, is allowed and exercised by the tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Generator, Sequence

from repro.substrates.sharedmem.adopt_commit import adopt_commit_program
from repro.substrates.sharedmem.memory import SharedMemory
from repro.substrates.sharedmem.ops import Op, Read, Write
from repro.substrates.sharedmem.scheduler import (
    RandomScheduler,
    SharedMemorySystem,
    StepScheduler,
)

__all__ = ["DiamondSOracle", "DetectorConsensusResult", "run_diamond_s_consensus"]

_DECISION = "ds-decision"


class DiamondSOracle:
    """A ◇S failure detector over the step-scheduler substrate.

    Semantics per query ``suspects(j)``:

    - *strong completeness*: a crashed ``j`` is always suspected;
    - *eventual weak accuracy*: after ``stabilization_step`` (global memory
      steps), the designated ``trusted`` process is never suspected;
    - everything else is adversarial: alive non-trusted processes are
      slandered at ``slander_prob`` forever, and before stabilisation even
      the trusted process is.
    """

    def __init__(
        self,
        trusted: int,
        stabilization_step: int,
        rng: random.Random,
        *,
        slander_prob: float = 0.3,
    ) -> None:
        self.trusted = trusted
        self.stabilization_step = stabilization_step
        self.rng = rng
        self.slander_prob = slander_prob
        self.system: SharedMemorySystem | None = None  # bound after build
        self.memory: SharedMemory | None = None

    def bind(self, system: SharedMemorySystem, memory: SharedMemory) -> None:
        self.system = system
        self.memory = memory

    def suspects(self, j: int) -> bool:
        assert self.system is not None and self.memory is not None
        crashed = (
            j in self.system.crash_after
            and self.system.steps_taken[j] >= self.system.crash_after[j]
        )
        if crashed:
            return True
        stabilized = self.memory.steps_applied >= self.stabilization_step
        if stabilized and j == self.trusted:
            return False
        return self.rng.random() < self.slander_prob


def _consensus_program(value: Any, oracle: DiamondSOracle, max_phases: int) -> Any:
    def program(pid: int, n: int) -> Generator[Op, Any, Any]:
        estimate = value
        for phase in range(1, max_phases + 1):
            coordinator = phase % n
            yield Write(f"ds-est-{phase}", estimate)
            # Wait for the coordinator's phase estimate, its suspicion, or a
            # decision by anyone (a decided coordinator stops stepping).
            while True:
                decided = yield from _scan_decisions(n)
                if decided is not None:
                    return decided
                cell = yield Read(coordinator, f"ds-est-{phase}")
                if cell is not None:
                    estimate = cell
                    break
                if oracle.suspects(coordinator):
                    break
            outcome = yield from adopt_commit_program(
                estimate,
                phase1_array=f"ds-ac1-{phase}",
                phase2_array=f"ds-ac2-{phase}",
            )(pid, n)
            estimate = outcome.value
            if outcome.committed:
                yield Write(_DECISION, estimate)
                return estimate
        raise RuntimeError(
            f"process {pid}: no decision within {max_phases} phases — "
            "raise max_phases or stabilize the oracle earlier"
        )

    return program


def _scan_decisions(n: int) -> Generator[Op, Any, Any]:
    for owner in range(n):
        cell = yield Read(owner, _DECISION)
        if cell is not None:
            return cell
    return None


@dataclass
class DetectorConsensusResult:
    """Outcome of a ◇S-consensus run."""

    n: int
    inputs: tuple[Any, ...]
    decisions: dict[int, Any]
    crashed: frozenset[int]
    total_steps: int


def run_diamond_s_consensus(
    values: Sequence[Any],
    *,
    seed: int = 0,
    crash_after: dict[int, int] | None = None,
    trusted: int | None = None,
    stabilization_step: int = 200,
    slander_prob: float = 0.3,
    max_phases: int = 60,
    scheduler: StepScheduler | None = None,
    max_steps: int = 2_000_000,
) -> DetectorConsensusResult:
    """Consensus on shared memory with a ◇S oracle, ≤ n−1 crashes.

    ``trusted`` defaults to the lowest-id process that never crashes; it
    must be correct for the liveness guarantee (safety holds regardless).
    """
    n = len(values)
    crash_after = dict(crash_after or {})
    if len(crash_after) >= n:
        raise ValueError("at least one process must stay alive")
    if trusted is None:
        trusted = min(pid for pid in range(n) if pid not in crash_after)
    if trusted in crash_after:
        raise ValueError(f"trusted process {trusted} is scheduled to crash")
    rng = random.Random(seed)
    memory = SharedMemory(n)
    oracle = DiamondSOracle(
        trusted,
        stabilization_step,
        random.Random(rng.getrandbits(64)),
        slander_prob=slander_prob,
    )
    programs = [
        _consensus_program(values[pid], oracle, max_phases) for pid in range(n)
    ]
    system = SharedMemorySystem(
        memory,
        programs,
        scheduler or RandomScheduler(rng),
        crash_after=crash_after,
    )
    oracle.bind(system, memory)
    run = system.run(max_steps=max_steps)
    decisions = {
        pid: run.outputs[pid]
        for pid in range(n)
        if pid in run.finished
    }
    return DetectorConsensusResult(
        n=n,
        inputs=tuple(values),
        decisions=decisions,
        crashed=run.crashed,
        total_steps=run.total_steps,
    )
