"""Early-deciding FloodMin: pay for the failures that happen, not the budget.

FloodMin always runs ``⌊f/k⌋ + 1`` rounds — the worst case — even when
nothing fails.  The classic refinement (for ``k = 1``, crash faults):
decide at the end of the first **clean round** — a round in which you heard
from exactly the same processes as the round before — or at round ``f + 1``,
whichever comes first.  With ``f'`` actual failures some process experiences
a clean round by round ``f' + 2``, so failure-free runs decide in 2 rounds.

Why a clean round suffices (non-uniform agreement — among processes alive
at the end, which is what the crash-model task demands): suppose ``p_i``
sees ``heard_r = heard_{r-1} = H`` and decides its minimum ``v``.  Any
value ``u < v`` alive anywhere at the end of round ``r`` reached its holder
from some sender ``s`` that was alive through round ``r-1`` — so
``s ∈ heard_{r-1}(i) = heard_r(i)``, and ``s``'s round-``r`` message
(carrying its minimum ``≤ u``) reached ``p_i``, contradiction.  Hence no
*alive* process holds a smaller value when ``p_i`` decides, and minima
never fall below the alive minimum afterwards.  (Uniform agreement — also
binding processes that decide and then crash — is a genuinely harder task
needing ``f' + 2`` rounds in all cases; this implementation targets the
standard crash-model task where crashed processes' outputs are moot.)

The argument is machine-checked: the tests verify agreement among final
survivors against **every** crash adversary for small systems (exhaustive)
and hypothesis-random ones for larger.
"""

from __future__ import annotations

from typing import Any

from repro.core.algorithm import Protocol, RoundProcess, make_protocol
from repro.core.types import Round, RoundView

__all__ = ["EarlyDecidingFloodMinProcess", "early_floodmin_protocol"]


class EarlyDecidingFloodMinProcess(RoundProcess):
    """FloodMin (k = 1) with the clean-round early-decision rule.

    Decides at the end of round ``r`` when ``heard_r == heard_{r-1}``, and
    unconditionally at round ``f + 1``.  Keeps emitting after deciding so
    slower processes still receive its minimum.
    """

    def __init__(self, pid: int, n: int, input_value: Any, *, f: int) -> None:
        super().__init__(pid, n, input_value)
        if not 0 <= f < n:
            raise ValueError(f"need 0 ≤ f < n, got f={f}, n={n}")
        self.f = f
        self.minimum = input_value
        self._previous_heard: frozenset[int] | None = None

    def emit(self, round_number: Round) -> Any:
        return self.minimum

    def absorb(self, view: RoundView) -> None:
        received = [v for v in view.messages.values() if v is not None]
        if received:
            self.minimum = min([self.minimum, *received])
        heard = view.heard
        clean = self._previous_heard is not None and heard == self._previous_heard
        self._previous_heard = heard
        if not self.decided and (clean or view.round >= self.f + 1):
            self.decide(self.minimum)

    def copy(self) -> "EarlyDecidingFloodMinProcess":
        # minimum is a value, _previous_heard a frozenset — all immutable.
        return self._shallow_copy()


def early_floodmin_protocol(f: int) -> Protocol:
    """Early-deciding consensus for ≤ f synchronous crash faults."""
    return make_protocol(
        EarlyDecidingFloodMinProcess, name=f"early-floodmin(f={f})", f=f
    )
