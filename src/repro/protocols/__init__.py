"""Distributed algorithms from the paper, in the RRFD emit/receive format.

- :mod:`repro.protocols.kset` — Theorem 3.1's one-round k-set agreement;
- :mod:`repro.protocols.consensus` — the k = 1 specialisation;
- :mod:`repro.protocols.floodset` — FloodMin, the matching ``⌊f/k⌋ + 1``
  round synchronous upper bound (Corollary 4.2's other half);
- :mod:`repro.protocols.adopt_commit` — the wait-free adopt-commit protocol
  of Section 4.2;
- :mod:`repro.protocols.semisync_consensus` — the 2-step consensus in the
  semi-synchronous model (Section 5), plus the 2n-step DDS baseline;
- :mod:`repro.protocols.properties` — task specifications (agreement,
  validity, termination) used by tests and benchmarks.
"""

from repro.protocols.adopt_commit import (
    AdoptCommitOutcome,
    AdoptCommitRoundsProcess,
    adopt_commit_protocol,
)
from repro.protocols.consensus import ConsensusProcess, consensus_protocol
from repro.protocols.detector_consensus import (
    DetectorConsensusResult,
    DiamondSOracle,
    run_diamond_s_consensus,
)
from repro.protocols.early_stopping import (
    EarlyDecidingFloodMinProcess,
    early_floodmin_protocol,
)
from repro.protocols.floodset import FloodMinProcess, floodmin_protocol
from repro.protocols.kset import KSetAgreementProcess, kset_protocol
from repro.protocols.properties import (
    check_agreement,
    check_kset_agreement,
    check_termination,
    check_validity,
)

__all__ = [
    "AdoptCommitOutcome",
    "AdoptCommitRoundsProcess",
    "adopt_commit_protocol",
    "ConsensusProcess",
    "consensus_protocol",
    "DetectorConsensusResult",
    "DiamondSOracle",
    "run_diamond_s_consensus",
    "EarlyDecidingFloodMinProcess",
    "early_floodmin_protocol",
    "FloodMinProcess",
    "floodmin_protocol",
    "KSetAgreementProcess",
    "kset_protocol",
    "check_agreement",
    "check_kset_agreement",
    "check_termination",
    "check_validity",
]
