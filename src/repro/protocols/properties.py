"""Task specifications: the input/output requirements protocols must meet.

The paper's solvability notion: an RRFD system satisfying predicate ``P``
solves task ``T`` if an emit/receive algorithm exists such that for *any*
D-family satisfying ``P``, processes eventually commit to outputs meeting
``T``'s input/output requirements.  These checkers encode the requirements
for the tasks used throughout: (k-set) agreement, validity, termination.

They operate on :class:`repro.core.types.ExecutionTrace` objects so the same
checks serve unit tests, hypothesis properties and benchmark assertions.
"""

from __future__ import annotations

from typing import Any, Container

from repro.core.types import ExecutionTrace

__all__ = [
    "check_kset_agreement",
    "check_agreement",
    "check_validity",
    "check_termination",
    "PropertyFailure",
]


class PropertyFailure(AssertionError):
    """A task requirement was violated by an execution."""


def check_kset_agreement(trace: ExecutionTrace, k: int) -> None:
    """At most ``k`` distinct values decided (undecided processes ignored)."""
    values = trace.decided_values
    if len(values) > k:
        raise PropertyFailure(
            f"{len(values)} distinct values decided ({sorted(map(repr, values))}), "
            f"but k={k}"
        )


def check_agreement(trace: ExecutionTrace) -> None:
    """All deciders decided the same value (consensus agreement)."""
    check_kset_agreement(trace, 1)


def check_validity(
    trace: ExecutionTrace, allowed: Container[Any] | None = None
) -> None:
    """Every decided value is some process's input (or in ``allowed``)."""
    valid = allowed if allowed is not None else set(trace.inputs)
    for pid, value in enumerate(trace.decisions):
        if value is not None and value not in valid:
            raise PropertyFailure(
                f"process {pid} decided {value!r}, not an input "
                f"({list(trace.inputs)!r})"
            )


def check_termination(
    trace: ExecutionTrace,
    *,
    by_round: int | None = None,
    deciders: Container[int] | None = None,
) -> None:
    """Every process (or every process in ``deciders``) decided.

    ``by_round`` additionally requires each decision to have been made no
    later than that round — the paper's round-complexity claims (one round
    for Theorem 3.1, ``⌊f/k⌋ + 1`` for FloodMin) are checked this way.
    """
    for pid in range(trace.n):
        if deciders is not None and pid not in deciders:
            continue
        if trace.decisions[pid] is None:
            raise PropertyFailure(f"process {pid} never decided")
        if by_round is not None and trace.decided_at[pid] > by_round:
            raise PropertyFailure(
                f"process {pid} decided at round {trace.decided_at[pid]}, "
                f"required by round {by_round}"
            )
