"""FloodMin: synchronous k-set agreement in ``⌊f/k⌋ + 1`` rounds.

This is the classic matching *upper bound* for Corollary 4.2/4.4
(Chaudhuri–Herlihy–Lynch–Tuttle): in a synchronous system with at most ``f``
crash faults, k-set agreement is solvable in ``⌊f/k⌋ + 1`` rounds, and the
paper's reduction shows no algorithm can do better.

The algorithm: every process maintains the minimum value it has seen;
each round it broadcasts that minimum and updates to the minimum of the
values received; after ``⌊f/k⌋ + 1`` rounds it decides its current minimum.

Correctness sketch (crash faults): by pigeonhole, among ``⌊f/k⌋ + 1`` rounds
some round sees at most ``k − 1`` crashes.  After such a round the alive
processes' minima span at most ``k`` distinct values (the pre-round global
minimum can be lost only to the ≤ k−1 crashers, each "hiding" at most one
smaller value), and the set of held minima only shrinks afterwards.

FloodMin is a *crash-model* algorithm.  Under send-omission faults it can
fail: a faulty-but-alive process may inject a small value to only some
correct processes in the final round, splitting their minima.  (The
``⌊f/k⌋ + 1`` lower bound of Section 4.1 applies to omission faults too, but
matching it there takes omission-aware algorithms, e.g. via the
Neiger–Toueg transformers the paper cites.)
"""

from __future__ import annotations

from typing import Any

from repro.core.algorithm import Protocol, RoundProcess, make_protocol
from repro.core.types import Round, RoundView

__all__ = ["FloodMinProcess", "floodmin_protocol", "rounds_needed"]


def rounds_needed(f: int, k: int) -> int:
    """The algorithm's round complexity, ``⌊f/k⌋ + 1``."""
    if k < 1:
        raise ValueError(f"k must be ≥ 1, got {k}")
    if f < 0:
        raise ValueError(f"f must be ≥ 0, got {f}")
    return f // k + 1


class FloodMinProcess(RoundProcess):
    """Broadcast-min for ``⌊f/k⌋ + 1`` rounds, then decide the minimum.

    Inputs must be totally ordered (ints in the experiments).  The process
    participates in every round, decided or not, so late rounds of longer
    executions remain well-formed.
    """

    def __init__(self, pid: int, n: int, input_value: Any, *, f: int, k: int = 1) -> None:
        super().__init__(pid, n, input_value)
        self.f = f
        self.k = k
        self.deadline = rounds_needed(f, k)
        self.minimum = input_value

    def emit(self, round_number: Round) -> Any:
        return self.minimum

    def absorb(self, view: RoundView) -> None:
        # A crashed sender's payload arrives as None when the executor runs
        # with crashed_stop_emitting; ignore such holes.
        received = [v for v in view.messages.values() if v is not None]
        if received:
            self.minimum = min([self.minimum, *received])
        if view.round >= self.deadline and not self.decided:
            self.decide(self.minimum)

    def copy(self) -> "FloodMinProcess":
        # All state (f, k, deadline, minimum, decision) is immutable values.
        return self._shallow_copy()


def floodmin_protocol(f: int, k: int = 1) -> Protocol:
    """FloodMin for k-set agreement under ≤ f synchronous crash faults."""
    return make_protocol(FloodMinProcess, name=f"floodmin(f={f},k={k})", f=f, k=k)
