"""One-round k-set agreement under the k-set detector (Theorem 3.1).

The k-set agreement task: ``n > k`` processes each start with an input; every
process must choose the input of *some* process, and at most ``k`` distinct
values may be chosen overall (``k = 1`` is consensus).

Theorem 3.1's algorithm is a single round under
:class:`repro.core.predicates.KSetDetector`:

    A process ``p_i`` emits its value and chooses the value of the process in
    ``S − D(i, 1)`` with the lowest process identifier.

Why at most ``k`` values are chosen: if ``v₁, v₂`` are chosen values adopted
from processes ``p₁ < p₂``, then ``p₁`` is in the *union* of the suspicion
sets (whoever chose ``p₂`` suspected ``p₁``) but not in the *intersection*
(whoever chose ``p₁`` trusted it).  The detector bounds
``|⋃D − ⋂D| < k``, so at most ``k − 1`` such "contested" lowest-trusted
processes can exist beyond the globally-lowest trusted one — at most ``k``
distinct values in total.
"""

from __future__ import annotations

from typing import Any

from repro.core.algorithm import Protocol, RoundProcess, make_protocol
from repro.core.types import ProcessId, Round, RoundView

__all__ = ["KSetAgreementProcess", "kset_protocol"]


class KSetAgreementProcess(RoundProcess):
    """Theorem 3.1's one-round algorithm.

    The process emits its input and, on its round-1 view, decides the value
    of the lowest-id process it does *not* suspect.  The framework guarantee
    ``D(i, r) ≠ S`` ensures such a process exists, and the RRFD guarantee
    ensures its message was delivered.
    """

    def emit(self, round_number: Round) -> Any:
        return self.input_value

    def absorb(self, view: RoundView) -> None:
        if self.decision is not None:
            return
        # Lowest-id trusted process: scan ids ascending instead of building
        # and sorting the complement set (hot under exhaustive exploration).
        suspected = view.suspected
        chosen: ProcessId = 0
        while chosen in suspected:
            chosen += 1
        self.decide(view.value_from(chosen))

    def copy(self) -> "KSetAgreementProcess":
        # Every attribute (pid, n, input_value, decision) is immutable.
        return self._shallow_copy()


def kset_protocol() -> Protocol:
    """The one-round k-set agreement protocol of Theorem 3.1.

    The algorithm itself is oblivious to ``k`` — the *model* (the
    :class:`~repro.core.predicates.KSetDetector` predicate it runs under)
    determines how many distinct values can be decided.
    """
    return make_protocol(KSetAgreementProcess, name="kset-one-round")
