"""Adopt-commit: the wait-free machinery of Section 4.2.

Process ``p_i`` inputs a proposal ``v_i``; it outputs either ``commit v`` or
``adopt v`` for some input ``v``, subject to:

1. *commit-on-unanimity*: if all inputs equal ``v``, all processes commit ``v``;
2. *agreement-on-commit*: if any process commits ``v``, every process commits
   or adopts that same ``v``;
3. *validity*: the output value is some process's input.

The paper gives a two-phase wait-free SWMR protocol (write proposal, read
all; write commit/adopt, read all).  Two renderings are provided:

- :class:`AdoptCommitRoundsProcess` — the protocol as two rounds of the
  *atomic-snapshot RRFD* (item 5's predicate).  The snapshot structure
  (round views totally ordered by inclusion, self always seen) is exactly
  what the correctness argument needs, and this is the form Theorem 4.3's
  simulation invokes in its rounds 2–3.
- a register-level version lives in
  :mod:`repro.substrates.sharedmem.adopt_commit`, running the paper's
  literal two-array protocol on simulated SWMR registers under an
  adversarial step scheduler (experiment E13).

Correctness under the snapshot RRFD: round-1 views are ⊆-ordered and contain
the viewer, so two processes that each saw a *singleton* value set saw the
same value — at most one value can reach phase "commit v".  In round 2, a
process that saw only ``commit v`` commits; any other process's view either
contains one of those commit messages (it adopts ``v``) or is contained in a
committer's view (then it too saw only ``commit v`` and committed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.algorithm import Protocol, RoundProcess, make_protocol
from repro.core.types import Round, RoundView

__all__ = [
    "AdoptCommitOutcome",
    "AdoptCommitRoundsProcess",
    "adopt_commit_protocol",
]


@dataclass(frozen=True)
class AdoptCommitOutcome:
    """Output of adopt-commit: a value plus whether it was committed."""

    committed: bool
    value: Any

    @property
    def adopted(self) -> bool:
        return not self.committed

    def __str__(self) -> str:
        verb = "commit" if self.committed else "adopt"
        return f"{verb} {self.value!r}"


class AdoptCommitRoundsProcess(RoundProcess):
    """Two-round adopt-commit under the atomic-snapshot RRFD (item 5).

    Round 1: emit the proposal; if every trusted value seen equals ``v``,
    move to phase ``("commit", v)``, else ``("adopt", own proposal)``.
    Round 2: emit the phase; decide per the rules in the module docstring.

    "Trusted" means senders outside ``D(i, r)`` — the snapshot predicate
    guarantees those sets are ⊆-chain-ordered across processes and always
    include the process itself.
    """

    def __init__(self, pid: int, n: int, input_value: Any) -> None:
        super().__init__(pid, n, input_value)
        self._phase2: tuple[str, Any] | None = None

    def emit(self, round_number: Round) -> Any:
        if round_number == 1:
            return ("propose", self.input_value)
        if self._phase2 is None:
            raise RuntimeError(
                f"process {self.pid} reached round {round_number} without a "
                "phase-2 value — absorb() was not called for round 1"
            )
        return self._phase2

    def _trusted_values(self, view: RoundView) -> list[Any]:
        trusted = frozenset(range(self.n)) - view.suspected
        return [view.value_from(sender) for sender in sorted(trusted)]

    def absorb(self, view: RoundView) -> None:
        if view.round == 1:
            proposals = {value for _, value in self._trusted_values(view)}
            if proposals == {self.input_value}:
                self._phase2 = ("commit", self.input_value)
            else:
                self._phase2 = ("adopt", self.input_value)
        elif view.round == 2 and not self.decided:
            phases = self._trusted_values(view)
            committed = {value for tag, value in phases if tag == "commit"}
            if committed and all(tag == "commit" for tag, _ in phases):
                # Snapshot ordering ⇒ a single committed value here.
                self.decide(AdoptCommitOutcome(True, next(iter(committed))))
            elif committed:
                self.decide(AdoptCommitOutcome(False, next(iter(sorted(committed, key=repr)))))
            else:
                self.decide(AdoptCommitOutcome(False, self.input_value))

    def copy(self) -> "AdoptCommitRoundsProcess":
        # _phase2 is a tuple (or None); every attribute is immutable.
        return self._shallow_copy()


def adopt_commit_protocol() -> Protocol:
    """Two-round wait-free adopt-commit (atomic-snapshot RRFD, item 5)."""
    return make_protocol(AdoptCommitRoundsProcess, name="adopt-commit-rounds")
