"""The two-round gather-and-relay construction (Section 2, items 3 and 4).

Both of these paper claims use the same mechanism:

- *item 4*: if ``2f < n``, two rounds of asynchronous message passing
  (predicate (3)) implement one round of SWMR shared memory (predicates
  (3)+(4)).  Round one: emit the payload.  Round two: emit the set of
  processes heard in round one (with their payloads).  A process has
  "heard of" ``j`` if it heard ``j`` directly or some relayer did.  Since
  everyone hears a majority in round one, some process is heard *by* a
  majority, and majorities intersect — that process is heard of by all,
  giving predicate (4).

- *item 3*: two rounds of the mixed-resilience model *B* (some ``t``
  processes may miss up to ``t``, the rest at most ``f``; ``f < t``,
  ``2t < n``) implement one round of model *A* (everyone misses ≤ f).  In
  round two even a weak process hears ``≥ n − t > t ≥ |Q|`` processes, so
  at least one strong relayer, whose round-one reception it inherits —
  at most ``f`` missed.

:func:`two_round_relay` runs any emit/receive algorithm this way under a
given base predicate and returns the simulated views plus both the base and
the simulated suspicion histories, so tests can check the target predicate
holds on the simulated rounds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.algorithm import Protocol, RoundProcess
from repro.core.predicate import Predicate
from repro.core.predicates import AsyncMessagePassing, MixedResilience
from repro.core.types import DHistory, DRound, RoundView
from repro.util.rng import make_rng

__all__ = [
    "RelayResult",
    "two_round_relay",
    "simulate_mp_to_swmr",
    "simulate_mixed_to_async",
]


@dataclass
class RelayResult:
    """Outcome of a two-round relay simulation."""

    n: int
    processes: list[RoundProcess]
    simulated_views: list[list[RoundView]]
    base_history: DHistory
    simulated_history: DHistory
    base_rounds_used: int

    @property
    def decisions(self) -> list[Any]:
        return [proc.decision for proc in self.processes]


def two_round_relay(
    protocol: Protocol,
    inputs: Sequence[Any],
    base: Predicate,
    *,
    simulated_rounds: int,
    seed: int = 0,
    rng: random.Random | None = None,
) -> RelayResult:
    """Simulate ``simulated_rounds`` strong rounds with ``2×`` base rounds.

    Per simulated round ``r``:

    1. base round A: every process "emits" its payload; the base adversary
       yields ``D_A``; process ``i`` directly hears ``H_i = S − D_A(i)``.
    2. base round B: every process emits ``(H_i, payloads of H_i)``; the
       adversary yields ``D_B``; process ``i``'s *heard-of* set is
       ``H_i ∪ ⋃ {H_m : m ∈ S − D_B(i)}``.

    The simulated view delivers the round-``r`` payloads of the heard-of
    set, with ``D_sim(i, r)`` its complement.
    """
    n = len(inputs)
    if base.n != n:
        raise ValueError(f"predicate is for n={base.n}, inputs give n={n}")
    rng = rng or make_rng(seed)
    processes = protocol.spawn_all(tuple(inputs))
    simulated_views: list[list[RoundView]] = [[] for _ in range(n)]
    base_history: DHistory = ()
    simulated_history: DHistory = ()

    for r in range(1, simulated_rounds + 1):
        payloads = [processes[pid].emit(r) for pid in range(n)]

        d_a = base.sample_round(rng, base_history)
        base_history = base_history + (d_a,)
        heard_direct = [frozenset(range(n)) - d_a[pid] for pid in range(n)]

        d_b = base.sample_round(rng, base_history)
        base_history = base_history + (d_b,)

        sim_round: list[frozenset[int]] = []
        for pid in range(n):
            relayers = frozenset(range(n)) - d_b[pid]
            heard_of = frozenset(heard_direct[pid])
            for m in relayers:
                heard_of |= heard_direct[m]
            suspected = frozenset(range(n)) - heard_of
            sim_round.append(suspected)
            view = RoundView(
                pid=pid,
                round=r,
                messages={j: payloads[j] for j in sorted(heard_of)},
                suspected=suspected,
                n=n,
            )
            simulated_views[pid].append(view)
            processes[pid].absorb(view)
        simulated_history = simulated_history + (tuple(sim_round),)

    return RelayResult(
        n=n,
        processes=processes,
        simulated_views=simulated_views,
        base_history=base_history,
        simulated_history=simulated_history,
        base_rounds_used=2 * simulated_rounds,
    )


def simulate_mp_to_swmr(
    protocol: Protocol,
    inputs: Sequence[Any],
    f: int,
    *,
    simulated_rounds: int,
    seed: int = 0,
) -> RelayResult:
    """Item 4: async message passing (``2f < n``) simulating SWMR rounds."""
    n = len(inputs)
    if 2 * f >= n:
        raise ValueError(
            f"the construction requires 2f < n (majorities must intersect); "
            f"got f={f}, n={n}"
        )
    return two_round_relay(
        protocol,
        inputs,
        AsyncMessagePassing(n, f),
        simulated_rounds=simulated_rounds,
        seed=seed,
    )


def simulate_mixed_to_async(
    protocol: Protocol,
    inputs: Sequence[Any],
    t: int,
    f: int,
    *,
    simulated_rounds: int,
    seed: int = 0,
) -> RelayResult:
    """Item 3: model *B* (t weak processes) simulating model *A* rounds."""
    n = len(inputs)
    if 2 * t >= n:
        raise ValueError(f"the construction requires 2t < n; got t={t}, n={n}")
    if f > t:
        raise ValueError(f"model B is defined for f ≤ t; got f={f}, t={t}")
    return two_round_relay(
        protocol,
        inputs,
        MixedResilience(n, t, f),
        simulated_rounds=simulated_rounds,
        seed=seed,
    )
