"""Full-stack composition: adopt-commit over ABD registers over messages.

The paper's layering, end to end: asynchronous message passing (with
``2f < n``) implements SWMR shared memory (ABD, reference [22]); SWMR
shared memory runs the Section 4.2 adopt-commit protocol.  Composing the
two gives wait-free-up-to-minority adopt-commit *directly on the network*
— the concrete payoff of "shared memory is message passing plus majorities".

Each process is a callback-driven state machine walking the two-phase
protocol over its :class:`~repro.substrates.abd.ABDNode`:

1. write the proposal to array ``ac1``; read all ``ac1`` cells;
2. write commit/adopt to ``ac2``; read all ``ac2`` cells; output.

Atomicity of the ABD registers is exactly what the register-level proof
needs, so the three adopt-commit properties carry over verbatim; the tests
check them across delay models and minority crash patterns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Sequence

from repro.protocols.adopt_commit import AdoptCommitOutcome
from repro.substrates.abd import ABDNode
from repro.substrates.events import EventSimulator
from repro.substrates.messaging.network import AsyncNetwork, DelayModel, UniformDelays

__all__ = ["AdoptCommitClient", "ABDAdoptCommitResult", "run_adopt_commit_over_abd"]

_PHASE1 = "abd-ac1"
_PHASE2 = "abd-ac2"


class AdoptCommitClient:
    """Drives one process's adopt-commit run over its ABD node."""

    def __init__(self, node: ABDNode, value: Any, results: dict[int, AdoptCommitOutcome]) -> None:
        self.node = node
        self.value = value
        self.results = results
        self._collected: list[Any] = []
        self._cursor = 0
        self._phase = 1

    def start(self) -> None:
        self.node.write(self.value, self._after_phase1_write, name=_PHASE1)

    # ------------------------------------------------------------- phase 1

    def _after_phase1_write(self, _: Any) -> None:
        self._collected, self._cursor = [], 0
        self._read_next(_PHASE1, self._after_phase1_reads)

    def _read_next(self, array: str, done_callback: Any) -> None:
        if self._cursor >= self.node.n:
            done_callback()
            return
        owner = self._cursor
        self._cursor += 1

        def absorb(cell: Any) -> None:
            if cell is not None:
                self._collected.append(cell)
            self._read_next(array, done_callback)

        self.node.read(owner, absorb, name=array)

    def _after_phase1_reads(self) -> None:
        if set(self._collected) == {self.value}:
            phase2 = ("commit", self.value)
        else:
            phase2 = ("adopt", self.value)
        self.node.write(phase2, self._after_phase2_write, name=_PHASE2)

    # ------------------------------------------------------------- phase 2

    def _after_phase2_write(self, _: Any) -> None:
        self._collected, self._cursor = [], 0
        self._read_next(_PHASE2, self._after_phase2_reads)

    def _after_phase2_reads(self) -> None:
        phases = list(self._collected)
        commits = {v for tag, v in phases if tag == "commit"}
        if commits and all(tag == "commit" for tag, _ in phases):
            outcome = AdoptCommitOutcome(True, next(iter(commits)))
        elif commits:
            outcome = AdoptCommitOutcome(False, sorted(commits, key=repr)[0])
        else:
            outcome = AdoptCommitOutcome(False, self.value)
        self.results[self.node.pid] = outcome


@dataclass
class ABDAdoptCommitResult:
    """Outcome of an adopt-commit-over-ABD run."""

    n: int
    inputs: tuple[Any, ...]
    outcomes: dict[int, AdoptCommitOutcome]
    crashed: frozenset[int]
    messages_sent: int

    def finished(self) -> frozenset[int]:
        return frozenset(self.outcomes)


def run_adopt_commit_over_abd(
    values: Sequence[Any],
    *,
    seed: int = 0,
    delays: DelayModel | None = None,
    crash_times: dict[int, float] | None = None,
    max_events: int = 500_000,
) -> ABDAdoptCommitResult:
    """Run one adopt-commit instance over the ABD emulation.

    Crashes must stay a minority (``2f < n``) for the non-crashed processes
    to terminate — the emulation's standing requirement.
    """
    n = len(values)
    crash_times = dict(crash_times or {})
    if 2 * len(crash_times) >= n:
        raise ValueError(
            f"{len(crash_times)} crashes with n={n}: ABD requires 2f < n"
        )
    sim = EventSimulator()
    nodes = [ABDNode(pid, n) for pid in range(n)]
    network = AsyncNetwork(
        nodes, sim, delays=delays or UniformDelays(random.Random(seed))
    )
    for pid, time in crash_times.items():
        network.crash(pid, time)
    results: dict[int, AdoptCommitOutcome] = {}
    clients = [
        AdoptCommitClient(nodes[pid], values[pid], results) for pid in range(n)
    ]
    for client in clients:
        if not network.is_crashed(client.node.pid, 0.0):
            sim.schedule(0.0, client.start)
    sim.run(max_events=max_events)
    return ABDAdoptCommitResult(
        n=n,
        inputs=tuple(values),
        outcomes=results,
        crashed=frozenset(crash_times),
        messages_sent=network.stats.messages_sent,
    )
