"""Theorem 4.3: asynchrony implements bounded synchrony (crash faults).

Strengthens Theorem 4.1 from send-omission to *crash* faults: an
asynchronous atomic-snapshot system with at most ``k`` failures implements
the first ``⌊f/k⌋`` rounds of a synchronous system with at most ``f`` crash
faults — at a price of **three** asynchronous rounds per simulated round.

Per simulated round ``r`` (each process ``p_i`` maintains ``F_i``, the set
of processes it proposes to have crashed; ``F_i = ∅`` initially):

1. *async round 3r−2*: emit the simulated round-``r`` value; let ``M_i`` be
   the processes whose value ``p_i`` missed (``|M_i| ≤ k`` by the model);
   set ``F_i := F_i ∪ M_i``.
2. *async rounds 3r−1, 3r*: run ``n`` adopt-commit protocols in parallel,
   one per process ``p_j``.  ``p_i``'s input for ``p_j`` is ``faulty`` if
   ``p_j ∈ F_i``, else ``alive`` (carrying ``p_j``'s round-``r`` value).
   On outcome:

   - commit *faulty*  → add ``p_j`` to ``F_i``; ``p_j``'s simulated
     round-``r`` message is ⊥ (``p_j ∈ D_sim(i, r)``);
   - adopt *faulty*   → add ``p_j`` to ``F_i`` but use an alive value seen
     during the protocol as ``p_j``'s message;
   - any *alive* outcome → use the carried value.

Why the simulated history is a crash history: if anyone *commits*
``p_j``-faulty at round ``r``, the adopt-commit agreement property puts
``p_j`` in every ``F_i`` by round ``r + 1``, so all propose faulty then and
all *commit* faulty — ``p_j`` is suspected by everyone from ``r + 1`` on
(eq. (2)).  Each simulated round adds at most ``k`` processes to ``⋃F_i``
(the ``M`` sets of one snapshot round), so ``⌊f/k⌋`` rounds stay within the
budget ``f`` (eq. (1)).

A technical note mirroring Corollary 4.4's discussion: a process can end up
*committed faulty about itself* (it proposed itself alive, others outvoted
it).  Such a process is "crashed" in the simulation — its simulated view no
longer entitles it to an output — and, as everywhere in this library, the
synchronous predicates exempt crashed processes' own rows (see the
modelling note in :mod:`repro.core.predicates`).  The validation history
below therefore drops a first-time self-commit from its own row.

One more implementation detail the extended abstract leaves implicit: *all*
proposals carry ``p_j``'s value when the proposer knows it (not only the
``alive`` ones).  A proposer of ``faulty`` that saw a mixed phase-1 view
necessarily saw an alive proposal, hence knows the value; attaching it makes
"adopt faulty ⇒ an alive value was seen" hold in every case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.algorithm import Protocol, RoundProcess
from repro.core.predicates import AtomicSnapshot, CrashSync
from repro.core.types import DHistory, DRound, RoundView
from repro.util.rng import make_rng

__all__ = ["CrashSimResult", "simulate_crash_rounds"]

_FAULTY = "faulty"
_ALIVE = "alive"


@dataclass
class CrashSimResult:
    """Outcome of the three-rounds-per-round crash simulation."""

    n: int
    f: int
    k: int
    sync_rounds: int
    async_rounds_used: int
    processes: list[RoundProcess]
    simulated_views: list[list[RoundView]]
    simulated_history: DHistory
    base_history: DHistory
    self_crashed: dict[int, int]  # pid -> first simulated round committed self-faulty

    @property
    def decisions(self) -> list[Any]:
        return [proc.decision for proc in self.processes]

    def crash_predicate_holds(self) -> bool:
        return CrashSync(self.n, self.f).allows(self.simulated_history)

    def cumulative_simulated_faults(self) -> int:
        suspected: set[int] = set()
        for d_round in self.simulated_history:
            for row in d_round:
                suspected.update(row)
        return len(suspected)


def _trusted(n: int, d_row: frozenset[int]) -> frozenset[int]:
    return frozenset(range(n)) - d_row


def simulate_crash_rounds(
    protocol: Protocol,
    inputs: Sequence[Any],
    f: int,
    k: int,
    *,
    seed: int = 0,
) -> CrashSimResult:
    """Simulate ``⌊f/k⌋`` synchronous crash rounds in the k-resilient
    atomic-snapshot model (3 async rounds per simulated round)."""
    n = len(inputs)
    if k < 1 or f < k:
        raise ValueError(f"need 1 ≤ k ≤ f, got k={k}, f={f}")
    sync_rounds = f // k
    rng = make_rng(seed)
    snapshot = AtomicSnapshot(n, k)

    processes = protocol.spawn_all(tuple(inputs))
    proposed_faulty: list[set[int]] = [set() for _ in range(n)]
    simulated_views: list[list[RoundView]] = [[] for _ in range(n)]
    simulated_rows: list[DRound] = []
    base_history: DHistory = ()
    self_crashed: dict[int, int] = {}
    suspected_so_far: set[int] = set()

    for r in range(1, sync_rounds + 1):
        values = [processes[pid].emit(r) for pid in range(n)]

        # Async round 3r-2: exchange values; extend F with the missed set M.
        d_val = snapshot.sample_round(rng, base_history)
        base_history = base_history + (d_val,)
        known_value: list[dict[int, Any]] = []
        for pid in range(n):
            seen = {j: values[j] for j in _trusted(n, d_val[pid])}
            known_value.append(seen)
            proposed_faulty[pid] |= set(d_val[pid])

        # Async round 3r-1: phase 1 of n parallel adopt-commits.
        # proposal[pid][j] = (status, value-or-None)
        phase1 = [
            {
                j: (
                    _FAULTY if j in proposed_faulty[pid] else _ALIVE,
                    known_value[pid].get(j),
                )
                for j in range(n)
            }
            for pid in range(n)
        ]
        d_p1 = snapshot.sample_round(rng, base_history)
        base_history = base_history + (d_p1,)
        phase2: list[dict[int, tuple[str, str, Any]]] = []
        for pid in range(n):
            mine: dict[int, tuple[str, str, Any]] = {}
            for j in range(n):
                seen = [phase1[m][j] for m in _trusted(n, d_p1[pid])]
                statuses = {status for status, _ in seen}
                alive_values = [v for status, v in seen if v is not None]
                carried = alive_values[0] if alive_values else phase1[pid][j][1]
                my_status = phase1[pid][j][0]
                if statuses == {my_status}:
                    mine[j] = ("commit", my_status, carried)
                else:
                    # Mixed view: someone proposed alive, so the value is known.
                    mine[j] = ("adopt", my_status, carried)
            phase2.append(mine)

        # Async round 3r: phase 2 — decide commit/adopt per process j.
        d_p2 = snapshot.sample_round(rng, base_history)
        base_history = base_history + (d_p2,)
        sim_row: list[frozenset[int]] = []
        for pid in range(n):
            seen_by_j: dict[int, list[tuple[str, str, Any]]] = {
                j: [phase2[m][j] for m in _trusted(n, d_p2[pid])] for j in range(n)
            }
            messages: dict[int, Any] = {}
            suspected: set[int] = set()
            for j in range(n):
                entries = seen_by_j[j]
                committed = [(s, v) for tag, s, v in entries if tag == "commit"]
                committed_faulty = any(s == _FAULTY for s, _ in committed)
                all_commit_faulty = bool(entries) and all(
                    tag == "commit" and s == _FAULTY for tag, s, _ in entries
                )
                carried = next(
                    (v for _, _, v in entries if v is not None),
                    phase2[pid][j][2],
                )
                if all_commit_faulty:
                    # Commit faulty: p_j's simulated message is ⊥.
                    suspected.add(j)
                    proposed_faulty[pid].add(j)
                    if j == pid and pid not in self_crashed:
                        self_crashed[pid] = r
                elif committed_faulty:
                    # Adopt faulty: p_j joins F, but a value was seen.
                    proposed_faulty[pid].add(j)
                    messages[j] = carried
                else:
                    messages[j] = carried
            # Predicate bookkeeping: a first-time self-commit is the process
            # discovering its own (simulated) crash — exempt from its row.
            row = frozenset(suspected)
            if pid in suspected and pid not in suspected_so_far:
                row = row - {pid}
                messages = dict(messages)
                messages[pid] = values[pid]  # it knows its own value locally
            sim_row.append(row)
            view = RoundView(
                pid=pid, round=r, messages=messages, suspected=row, n=n
            )
            simulated_views[pid].append(view)
            processes[pid].absorb(view)
        for row in sim_row:
            suspected_so_far.update(row)
        simulated_rows.append(tuple(sim_row))

    return CrashSimResult(
        n=n,
        f=f,
        k=k,
        sync_rounds=sync_rounds,
        async_rounds_used=3 * sync_rounds,
        processes=processes,
        simulated_views=simulated_views,
        simulated_history=tuple(simulated_rows),
        base_history=base_history,
        self_crashed=dict(self_crashed),
    )
