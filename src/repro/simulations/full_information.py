"""Item 3's equivalence: round-based async ≡ unconstrained async.

Whether round-based asynchronous systems (late messages discarded) are
equivalent to ones where late messages are kept was unclear for years; the
paper settles it with full information: "when process ``p_i`` receives a
round-``r`` message at round ``r`` from ``p_j`` it can recreate all the
simulated messages it missed from ``p_j`` since the last round it received a
message from ``p_j``.  It can thus simulate their FIFO reception at that
moment."

Concretely: under the full-information protocol, ``p_j``'s round-``r``
payload nests its entire history — its round-``(r−1)`` view contains the
payloads it received, including its own round-``(r−1)`` emission, which in
turn nests its round-``(r−2)`` view, and so on down to its input.  So the
overlay (which physically *discarded* those late messages) loses nothing:
:func:`reconstruct_missed` recovers them, and
:func:`verify_overlay_equivalence` certifies the recovery against what the
sender actually emitted.  This maps every run of the round-based system onto
a run of the unconstrained one.
"""

from __future__ import annotations

from typing import Any

from repro.core.types import RoundView
from repro.substrates.messaging.rounds import OverlayResult

__all__ = ["reconstruct_missed", "verify_overlay_equivalence"]


def reconstruct_missed(
    views: list[RoundView], sender: int
) -> dict[int, Any]:
    """All of ``sender``'s emissions recoverable from ``views``.

    ``views`` is one process's view history from a full-information overlay
    run.  For every round in which a message from ``sender`` was received —
    even with gaps — the nesting reveals the missed emissions in between,
    exactly the paper's FIFO-reception simulation.  Returns
    ``{round: payload}`` for every round recovered.
    """
    recovered: dict[int, Any] = {}

    def peel(payload: Any, rho: int) -> None:
        while rho >= 1 and rho not in recovered:
            recovered[rho] = payload
            if rho == 1:
                return
            if not (isinstance(payload, tuple) and payload and payload[0] == "view"):
                return
            _, messages, _suspected = payload
            if sender not in messages:
                return
            payload = messages[sender]
            rho -= 1

    for view in views:
        if sender in view.messages:
            peel(view.messages[sender], view.round)
    return recovered


def verify_overlay_equivalence(result: OverlayResult) -> dict[str, int]:
    """Certify item 3's reconstruction on a full-information overlay run.

    For every (receiver, sender) pair, everything :func:`reconstruct_missed`
    recovers must equal what the sender *actually emitted* (recorded by the
    overlay), and the recovery must cover every round up to the last direct
    reception — i.e. the discarded messages were redundant.

    Returns counters (``recovered``, ``direct``, ``gaps_filled``) and raises
    ``AssertionError`` on any mismatch.
    """
    recovered_total = 0
    direct_total = 0
    gaps_filled = 0
    for receiver in range(result.n):
        views = result.nodes[receiver].views
        for sender in range(result.n):
            recovered = reconstruct_missed(views, sender)
            actual = result.nodes[sender].emissions
            direct_rounds = {
                view.round for view in views if sender in view.messages
            }
            for rho, payload in recovered.items():
                assert rho in actual, (
                    f"receiver {receiver} recovered a round-{rho} emission "
                    f"sender {sender} never made"
                )
                assert payload == actual[rho], (
                    f"receiver {receiver} mis-recovered sender {sender}'s "
                    f"round-{rho} emission"
                )
            if direct_rounds:
                last_direct = max(direct_rounds)
                missing = set(range(1, last_direct + 1)) - set(recovered)
                assert not missing, (
                    f"receiver {receiver} could not recover sender {sender}'s "
                    f"emissions for rounds {sorted(missing)}"
                )
                gaps_filled += len(set(recovered) - direct_rounds)
            recovered_total += len(recovered)
            direct_total += len(direct_rounds)
    return {
        "recovered": recovered_total,
        "direct": direct_total,
        "gaps_filled": gaps_filled,
    }
