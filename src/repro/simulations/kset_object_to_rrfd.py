"""Theorem 3.3: a k-set-consensus object + SWMR memory ⟹ the k-set detector.

If a system solves k-set consensus and implements SWMR shared memory, it
supports a detector with ``|⋃_i D(i,r) − ⋂_i D(i,r)| < k`` per round — the
converse of Theorem 3.1.

The construction, per round ``r`` (run here on the shared-memory substrate
with a fresh :class:`~repro.substrates.sharedmem.memory.KSetConsensusObject`
per round):

1. emit: append the round-``r`` value to your value cell;
2. propose your own identifier to the round's k-set-consensus object; let
   ``j`` be the output (``j`` wrote its round-``r`` value before proposing,
   so its value is readable);
3. write ``j`` to your *choice* cell, then read all choice cells; let ``Q``
   be the set of identifiers read;
4. ``D(i, r) := S − Q``.

Why the detector property holds: two suspicion sets can differ only on
identifiers that were chosen through the object (every value in a choice
cell is a chosen id), and the object returns at most ``k`` distinct ids.
Moreover the chosen id whose choice cell was written *first* is read by
everyone (reads follow the reader's own write, which follows the first
write), so it is in every ``Q`` — the union-minus-intersection difference is
at most ``k − 1 < k``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Generator, Sequence

from repro.core.algorithm import Protocol, RoundProcess
from repro.core.predicates import KSetDetector
from repro.core.types import DRound, RoundView
from repro.substrates.sharedmem.memory import KSetConsensusObject, SharedMemory
from repro.substrates.sharedmem.ops import KSetPropose, Op, Read, Write
from repro.substrates.sharedmem.scheduler import (
    RandomScheduler,
    SharedMemorySystem,
    StepScheduler,
)

__all__ = ["KSetRRFDResult", "run_kset_object_rrfd"]

_VALUES = "thm33-values"
_CHOICE = "thm33-choice"


def _program(
    process: RoundProcess,
    max_rounds: int,
    views_out: list[RoundView],
) -> Any:
    def program(pid: int, n: int) -> Generator[Op, Any, Any]:
        emissions: dict[int, Any] = {}
        for r in range(1, max_rounds + 1):
            emissions[r] = process.emit(r)
            yield Write(_VALUES, dict(emissions))
            chosen = yield KSetPropose(f"round-{r}", pid)
            # One choice array per round: a later round must not overwrite
            # this round's choices while slow processes are still reading.
            yield Write(f"{_CHOICE}-{r}", chosen)
            chosen_ids: set[int] = set()
            for owner in range(n):
                cell = yield Read(owner, f"{_CHOICE}-{r}")
                if cell is not None:
                    chosen_ids.add(cell)
            # Fetch the round-r values of the trusted (chosen) processes.
            messages: dict[int, Any] = {}
            for j in sorted(chosen_ids):
                cell = yield Read(j, _VALUES)
                assert cell is not None and r in cell, (
                    f"chosen process {j} must have written its round-{r} value "
                    "before proposing (k-set validity)"
                )
                messages[j] = cell[r]
            suspected = frozenset(range(n)) - frozenset(chosen_ids)
            view = RoundView(
                pid=pid, round=r, messages=messages, suspected=suspected, n=n
            )
            views_out.append(view)
            process.absorb(view)
        return process.decision

    return program


@dataclass
class KSetRRFDResult:
    """Outcome of the Theorem 3.3 construction."""

    n: int
    k: int
    processes: list[RoundProcess]
    views: list[list[RoundView]]
    crashed: frozenset[int]
    total_steps: int

    @property
    def decisions(self) -> list[Any]:
        return [proc.decision for proc in self.processes]

    def d_rows(self, round_number: int) -> dict[int, frozenset[int]]:
        rows = {}
        for pid in range(self.n):
            for view in self.views[pid]:
                if view.round == round_number:
                    rows[pid] = view.suspected
        return rows

    def max_completed_round(self) -> int:
        return max((len(per) for per in self.views), default=0)

    def detector_property_holds(self) -> bool:
        """``|⋃D − ⋂D| < k`` per round, over the processes that completed it."""
        for r in range(1, self.max_completed_round() + 1):
            rows = list(self.d_rows(r).values())
            if not rows:
                continue
            union: frozenset[int] = frozenset()
            inter = rows[0]
            for row in rows:
                union |= row
                inter &= row
            if len(union - inter) >= self.k:
                return False
        return True


def run_kset_object_rrfd(
    protocol: Protocol,
    inputs: Sequence[Any],
    k: int,
    *,
    max_rounds: int,
    seed: int = 0,
    scheduler: StepScheduler | None = None,
    crash_after: dict[int, int] | None = None,
    adversarial_object: bool = True,
    max_steps: int = 2_000_000,
) -> KSetRRFDResult:
    """Run ``protocol`` under the detector built from k-set objects + SWMR.

    ``adversarial_object`` makes each round's k-set-consensus object answer
    with adversarially varied anchors (the weakest legal behaviour);
    otherwise it answers deterministically with the first proposal.
    """
    n = len(inputs)
    rng = random.Random(seed)
    objects = {
        f"round-{r}": KSetConsensusObject(
            k, rng=random.Random(rng.getrandbits(64)) if adversarial_object else None
        )
        for r in range(1, max_rounds + 1)
    }
    memory = SharedMemory(n, kset_objects=objects)
    processes = protocol.spawn_all(tuple(inputs))
    views: list[list[RoundView]] = [[] for _ in range(n)]
    programs = [
        _program(processes[pid], max_rounds, views[pid]) for pid in range(n)
    ]
    system = SharedMemorySystem(
        memory,
        programs,
        scheduler or RandomScheduler(rng),
        crash_after=crash_after,
    )
    run = system.run(max_steps=max_steps)
    return KSetRRFDResult(
        n=n,
        k=k,
        processes=processes,
        views=views,
        crashed=run.crashed,
        total_steps=run.total_steps,
    )
