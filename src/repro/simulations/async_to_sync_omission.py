"""Theorem 4.1: asynchrony implements bounded synchrony (omission faults).

An asynchronous atomic-snapshot RRFD system with at most ``k`` failures can
implement the first ``⌊f/k⌋`` rounds of a synchronous message-passing system
with at most ``f`` send-omission faults.

The reduction is pure predicate arithmetic, round-for-round: the snapshot
predicate (item 5) bounds each round's suspicions by
``|⋃_i D(i, r)| ≤ k`` (the suspicion sets are ⊆-chain-ordered with every
``|D| ≤ k``, so their union is the largest of them), hence over ``⌊f/k⌋``
rounds::

    |⋃_{0 < r ≤ ⌊f/k⌋} ⋃_i D(i, r)|  ≤  k·⌊f/k⌋  ≤  f

which — together with the snapshot model's ``p_i ∉ D(i, r)`` — is exactly
the send-omission predicate (eq. (1)) over those rounds.  No re-encoding of
messages is needed; the very same execution *is* a synchronous omission
execution.

Consequence (Corollary 4.2): a ``⌊f/k⌋``-round synchronous k-set agreement
algorithm would run unchanged in the k-resilient asynchronous system,
contradicting the asynchronous impossibility of k-set agreement with k
failures — so ``⌊f/k⌋ + 1`` synchronous rounds are necessary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.adversary import PredicateAdversary
from repro.core.executor import run_protocol
from repro.core.predicates import AtomicSnapshot, SendOmissionSync
from repro.core.types import ExecutionTrace
from repro.core.algorithm import Protocol
from repro.util.rng import make_rng

__all__ = ["OmissionSimResult", "simulate_omission_rounds", "sync_rounds_obtained"]


def sync_rounds_obtained(f: int, k: int) -> int:
    """How many synchronous omission rounds the reduction yields: ``⌊f/k⌋``."""
    if k < 1:
        raise ValueError(f"k must be ≥ 1, got {k}")
    if f < k:
        raise ValueError(
            f"the reduction needs f ≥ k to yield at least one round (f={f}, k={k})"
        )
    return f // k


@dataclass
class OmissionSimResult:
    """A snapshot-model execution reinterpreted as a synchronous one."""

    trace: ExecutionTrace
    f: int
    k: int
    sync_rounds: int
    omission_predicate_holds: bool
    cumulative_faults: int

    @property
    def within_budget(self) -> bool:
        return self.cumulative_faults <= self.f


def simulate_omission_rounds(
    protocol: Protocol,
    inputs: Sequence[Any],
    f: int,
    k: int,
    *,
    seed: int = 0,
) -> OmissionSimResult:
    """Run ``protocol`` for ``⌊f/k⌋`` rounds of the k-resilient snapshot
    model and certify the execution against the omission predicate.

    The returned result carries the proof obligations of Theorem 4.1:
    ``omission_predicate_holds`` (eq. (1) over the simulated rounds) and the
    cumulative fault count (``≤ k·⌊f/k⌋ ≤ f``).
    """
    n = len(inputs)
    rounds = sync_rounds_obtained(f, k)
    snapshot = AtomicSnapshot(n, k)
    adversary = PredicateAdversary(snapshot, make_rng(seed))
    trace = run_protocol(
        protocol,
        inputs,
        adversary,
        max_rounds=rounds,
        predicate=snapshot,
    )
    omission = SendOmissionSync(n, f)
    suspected: set[int] = set()
    for d_round in trace.d_history:
        for row in d_round:
            suspected.update(row)
    return OmissionSimResult(
        trace=trace,
        f=f,
        k=k,
        sync_rounds=rounds,
        omission_predicate_holds=omission.allows(trace.d_history),
        cumulative_faults=len(suspected),
    )
