"""The paper's cross-model simulations, executable.

Each module implements one reduction:

- :mod:`~repro.simulations.relay` — the two-round gather-and-relay
  construction shared by item 4 (async MP ⟶ SWMR shared memory when
  ``2f < n``) and item 3 (mixed-resilience model *B* ⟶ model *A*);
- :mod:`~repro.simulations.async_to_sync_omission` — Theorem 4.1: an
  atomic-snapshot system with ≤ k failures implements the first ``⌊f/k⌋``
  rounds of a synchronous send-omission system with ≤ f faults;
- :mod:`~repro.simulations.async_to_sync_crash` — Theorem 4.3: the same for
  *crash* faults, spending 3 async rounds per synchronous round (one value
  exchange + n parallel adopt-commit protocols);
- :mod:`~repro.simulations.kset_object_to_rrfd` — Theorem 3.3: a k-set-
  consensus object plus SWMR memory implement the k-set detector;
- :mod:`~repro.simulations.full_information` — item 3's equivalence of
  round-based and unconstrained asynchronous message passing, via
  reconstruction of discarded messages;
- :mod:`~repro.simulations.eventually_strong` — item 6: the ◇S detector as
  an RRFD, its predicate equivalences, and a rotating-coordinator consensus
  that exploits the never-suspected process.
"""

from repro.simulations.relay import (
    RelayResult,
    simulate_mixed_to_async,
    simulate_mp_to_swmr,
    two_round_relay,
)
from repro.simulations.async_to_sync_omission import (
    OmissionSimResult,
    simulate_omission_rounds,
)
from repro.simulations.async_to_sync_crash import (
    CrashSimResult,
    simulate_crash_rounds,
)
from repro.simulations.kset_object_to_rrfd import (
    KSetRRFDResult,
    run_kset_object_rrfd,
)
from repro.simulations.full_information import (
    reconstruct_missed,
    verify_overlay_equivalence,
)
from repro.simulations.adopt_commit_over_abd import (
    ABDAdoptCommitResult,
    AdoptCommitClient,
    run_adopt_commit_over_abd,
)
from repro.simulations.eventually_strong import (
    RotatingCoordinatorProcess,
    rotating_coordinator_protocol,
)

__all__ = [
    "RelayResult",
    "simulate_mixed_to_async",
    "simulate_mp_to_swmr",
    "two_round_relay",
    "OmissionSimResult",
    "simulate_omission_rounds",
    "CrashSimResult",
    "simulate_crash_rounds",
    "KSetRRFDResult",
    "run_kset_object_rrfd",
    "reconstruct_missed",
    "verify_overlay_equivalence",
    "RotatingCoordinatorProcess",
    "rotating_coordinator_protocol",
    "ABDAdoptCommitResult",
    "AdoptCommitClient",
    "run_adopt_commit_over_abd",
]
