"""Item 6: the classic failure detector ◇S as an RRFD system.

The paper's observations, all executable here:

1. The natural RRFD counterpart of an asynchronous system augmented with the
   failure detector ◇S (some correct process is eventually never suspected)
   is the predicate ``∃ p_j`` never suspected by anyone, equivalently
   ``|⋃_{r>0} ⋃_i D(i, r)| < n``
   (:class:`repro.core.predicates.EventuallyStrong`).  The "every real crash
   is eventually announced" half of ◇S comes for free: were a crash never
   announced, the RRFD round would block — vacuously implementing the model.

2. That predicate is item 1's send-omission predicate with ``f = n − 1``,
   minus the self-suspicion clause — so wait-free ◇S consensus reduces to
   synchronous consensus *by predicate manipulation alone*.  The lattice
   tests verify both inclusion directions at the predicate level.

3. Consensus is solvable in this model.  :class:`RotatingCoordinatorProcess`
   shows it constructively in ``n`` rounds: in round ``j`` (1-based),
   everyone adopts process ``j−1``'s emitted value *if it trusts it*.  At
   the round of the never-suspected process ``c``, everyone adopts the same
   value; from then on all processes (including later coordinators) hold
   it, so later adoptions change nothing.  Decide after round ``n``.
"""

from __future__ import annotations

from typing import Any

from repro.core.algorithm import Protocol, RoundProcess, make_protocol
from repro.core.types import Round, RoundView

__all__ = ["RotatingCoordinatorProcess", "rotating_coordinator_protocol"]


class RotatingCoordinatorProcess(RoundProcess):
    """n-round consensus under the ◇S-style RRFD (EventuallyStrong).

    Round ``j`` treats process ``j − 1`` as coordinator: any process that
    does not suspect the coordinator adopts the coordinator's emitted value.
    Agreement holds because some process is *never* suspected — at its
    round, adoption is universal, and the adopted value is thereafter held
    by everyone (so later coordinators emit it too).  Validity is clear
    (values only ever copied); termination is ``n`` rounds.
    """

    def __init__(self, pid: int, n: int, input_value: Any) -> None:
        super().__init__(pid, n, input_value)
        self.current = input_value

    def emit(self, round_number: Round) -> Any:
        return self.current

    def absorb(self, view: RoundView) -> None:
        coordinator = view.round - 1
        if coordinator < self.n and coordinator not in view.suspected:
            self.current = view.value_from(coordinator)
        if view.round >= self.n and not self.decided:
            self.decide(self.current)


def rotating_coordinator_protocol() -> Protocol:
    """n-round rotating-coordinator consensus for the ◇S RRFD (item 6)."""
    return make_protocol(RotatingCoordinatorProcess, name="rotating-coordinator")
