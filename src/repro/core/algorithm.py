"""The abstract *emit / receive* algorithm format of the RRFD model.

The paper's abstract algorithm (Section 1) is::

    r := 1
    forever do
        compute messages m_{i,r} for round r
        emit m_{i,r}
        (wait until) ∀ p_j ∈ S: received m_{j,r} or p_j ∈ D(i, r)
        r := r + 1

:class:`RoundProcess` is the per-process half of that loop:
:meth:`RoundProcess.emit` computes ``m_{i,r}`` and
:meth:`RoundProcess.absorb` consumes the end-of-round view (received messages
plus ``D(i, r)``).  The executor (see :mod:`repro.core.executor`) plays the
role of the system: it collects emissions, consults the adversary/RRFD for
suspicions, and distributes views.

A *protocol* is a factory producing one :class:`RoundProcess` per process id;
:class:`Protocol` captures that shape so executors can run any algorithm
uniformly.
"""

from __future__ import annotations

import copy as _copy
from abc import ABC, abstractmethod
from typing import Any, Callable

from repro.core.types import ProcessId, Round, RoundView

__all__ = [
    "RoundProcess",
    "Protocol",
    "FullInformationProcess",
    "make_protocol",
]


class RoundProcess(ABC):
    """One process's state machine in the emit/receive round format.

    Subclasses implement :meth:`emit` and :meth:`absorb`; they signal
    termination by setting :attr:`decision` to a non-``None`` output.  A
    decided process keeps participating (emitting) unless the executor is
    told otherwise — this mirrors full-information executions where decided
    processes still relay information.
    """

    def __init__(self, pid: ProcessId, n: int, input_value: Any) -> None:
        if not 0 <= pid < n:
            raise ValueError(f"pid {pid} out of range for n={n}")
        self.pid = pid
        self.n = n
        self.input_value = input_value
        self.decision: Any = None

    @abstractmethod
    def emit(self, round_number: Round) -> Any:
        """Compute and return the message ``m_{i,r}`` for ``round_number``."""

    @abstractmethod
    def absorb(self, view: RoundView) -> None:
        """Consume the end-of-round view and update local state."""

    @property
    def decided(self) -> bool:
        return self.decision is not None

    def decide(self, value: Any) -> None:
        """Commit to an output.  The first decision wins; re-deciding the
        same value is a no-op, a conflicting re-decision is a bug."""
        if value is None:
            raise ValueError("decision value may not be None (None means undecided)")
        if self.decision is not None and self.decision != value:
            raise RuntimeError(
                f"process {self.pid} attempted to change its decision from "
                f"{self.decision!r} to {value!r}"
            )
        self.decision = value

    # ------------------------------------------------------------ forking

    def copy(self) -> "RoundProcess":
        """An independent copy of this process at its current state.

        The contract behind :meth:`repro.core.executor.RoundExecutor.fork`:
        the copy must behave exactly like the original under any future
        sequence of ``emit``/``absorb`` calls, and must share no *mutable*
        state with it (diverging futures of the two copies may never
        influence each other).  The default deep-copies the instance, which
        is always sound; subclasses whose attributes are all immutable
        (ints, frozensets, tuples, input values that are never mutated in
        place) should override with ``return self._shallow_copy()`` — the
        incremental model checker forks once per explored tree edge, so
        this is a hot path.
        """
        return _copy.deepcopy(self)

    def _shallow_copy(self) -> "RoundProcess":
        """Helper for ``copy()`` overrides: clone sharing attribute values.

        Only sound when every attribute is immutable (or never mutated in
        place); mutable containers must be re-copied by the caller.
        """
        clone = self.__class__.__new__(self.__class__)
        clone.__dict__ = self.__dict__.copy()
        return clone


class Protocol:
    """A distributed algorithm: a named factory of per-process state machines."""

    def __init__(
        self,
        name: str,
        factory: Callable[[ProcessId, int, Any], RoundProcess],
    ) -> None:
        self.name = name
        self._factory = factory

    def spawn(self, pid: ProcessId, n: int, input_value: Any) -> RoundProcess:
        return self._factory(pid, n, input_value)

    def spawn_all(self, inputs: tuple[Any, ...] | list[Any]) -> list[RoundProcess]:
        n = len(inputs)
        return [self.spawn(pid, n, inputs[pid]) for pid in range(n)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Protocol({self.name!r})"


def make_protocol(cls: type[RoundProcess], name: str | None = None, **kwargs: Any) -> Protocol:
    """Wrap a :class:`RoundProcess` subclass as a :class:`Protocol`.

    Extra keyword arguments are forwarded to the subclass constructor after
    the mandatory ``(pid, n, input_value)`` triple, letting parameterised
    algorithms (``k``, fault bounds, ...) be partially applied.
    """

    def factory(pid: ProcessId, n: int, input_value: Any) -> RoundProcess:
        return cls(pid, n, input_value, **kwargs)

    return Protocol(name or cls.__name__, factory)


class FullInformationProcess(RoundProcess):
    """The *full-information* protocol: relay everything you know.

    In round 1 a process emits its input; in round ``r > 1`` it emits its
    entire view history.  Full-information executions are the canonical
    objects of the paper's simulations and lower-bound arguments: any
    round-based algorithm's state is a function of the full-information view,
    so enumerating these views enumerates all achievable knowledge.

    The emitted payload at round ``r`` is a nested structure:

    - round 1: ``("input", input_value)``
    - round r: ``("view", {sender: payload_received, ...}, suspected_set)``
      describing the previous round.
    """

    def __init__(self, pid: ProcessId, n: int, input_value: Any) -> None:
        super().__init__(pid, n, input_value)
        self.views: list[RoundView] = []

    def emit(self, round_number: Round) -> Any:
        if round_number == 1:
            return ("input", self.input_value)
        last = self.views[-1]
        return ("view", dict(last.messages), last.suspected)

    def absorb(self, view: RoundView) -> None:
        self.views.append(view)

    def copy(self) -> "FullInformationProcess":
        # Views are frozen records; only the list holding them is mutable.
        clone = self._shallow_copy()
        clone.views = list(self.views)
        return clone

    def knowledge(self) -> frozenset[ProcessId]:
        """Processes whose round-1 input this process has (transitively) seen.

        Only counts information relayed through full-information payloads;
        used by the knowledge-propagation experiments (E8).
        """
        known: set[ProcessId] = {self.pid}
        # Direct receptions in round 1 carry inputs; later rounds carry views
        # whose message dicts reveal which inputs the sender had seen.  We
        # compute a transitive closure over the recorded views.
        heard_by_round: list[dict[ProcessId, Any]] = [dict(v.messages) for v in self.views]
        if not heard_by_round:
            return frozenset(known)
        known.update(heard_by_round[0].keys())
        for round_messages in heard_by_round[1:]:
            for payload in round_messages.values():
                if isinstance(payload, tuple) and payload and payload[0] == "view":
                    known.update(payload[1].keys())
        return frozenset(known)
