"""Core RRFD kernel: the paper's primary contribution, executable.

Public surface:

- :mod:`repro.core.types` — process ids, round views, execution traces;
- :mod:`repro.core.algorithm` — the emit/receive algorithm format;
- :mod:`repro.core.predicate` / :mod:`repro.core.predicates` — models as
  predicates over suspicion sets, with the paper's full catalog;
- :mod:`repro.core.adversary` — RRFD strategies (the detector as adversary);
- :mod:`repro.core.executor` — the round engine;
- :mod:`repro.core.detector` — predicate + adversary facade;
- :mod:`repro.core.submodel` — the submodel relation, checked exhaustively;
- :mod:`repro.core.audit` — invariant auditing and the stall watchdog.
"""

from repro.core.adversary import (
    Adversary,
    CrashPatternAdversary,
    FailureFreeAdversary,
    FunctionAdversary,
    PredicateAdversary,
    ScriptedAdversary,
)
from repro.core.algorithm import (
    FullInformationProcess,
    Protocol,
    RoundProcess,
    make_protocol,
)
from repro.core.audit import (
    AuditReport,
    AuditViolation,
    ExecutionAuditor,
    StallDetected,
    StalledProcess,
    StallReport,
)
from repro.core.detector import RoundByRoundFaultDetector
from repro.core.executor import RoundExecutor, run_protocol
from repro.core.predicate import Conjunction, Predicate, Unconstrained
from repro.core.replay import adversary_from_trace, replay, verify_trace_consistency
from repro.core.trace_io import load_trace, save_trace, trace_from_dict, trace_to_dict
from repro.core.predicates import (
    AsyncMessagePassing,
    AtomicSnapshot,
    CrashSync,
    EventuallyStrong,
    KSetDetector,
    MixedResilience,
    SemiSyncEquality,
    SendOmissionSync,
    SharedMemoryAntisymmetric,
    SharedMemorySWMR,
)
from repro.core.submodel import (
    SubmodelResult,
    check_submodel,
    implies_exhaustive,
    refute_by_sampling,
)
from repro.core.types import (
    DHistory,
    DRound,
    ExecutionRound,
    ExecutionTrace,
    GuaranteeViolation,
    PredicateViolation,
    ProcessId,
    Round,
    RoundView,
    RRFDError,
)

__all__ = [
    # types
    "ProcessId",
    "Round",
    "DRound",
    "DHistory",
    "RoundView",
    "ExecutionRound",
    "ExecutionTrace",
    "RRFDError",
    "GuaranteeViolation",
    "PredicateViolation",
    # algorithm format
    "RoundProcess",
    "Protocol",
    "FullInformationProcess",
    "make_protocol",
    # predicates
    "Predicate",
    "Conjunction",
    "Unconstrained",
    "SendOmissionSync",
    "CrashSync",
    "AsyncMessagePassing",
    "MixedResilience",
    "SharedMemorySWMR",
    "SharedMemoryAntisymmetric",
    "AtomicSnapshot",
    "EventuallyStrong",
    "KSetDetector",
    "SemiSyncEquality",
    # adversaries
    "Adversary",
    "FailureFreeAdversary",
    "PredicateAdversary",
    "ScriptedAdversary",
    "CrashPatternAdversary",
    "FunctionAdversary",
    # engine
    "RoundExecutor",
    "run_protocol",
    "RoundByRoundFaultDetector",
    # replay & persistence
    "adversary_from_trace",
    "replay",
    "verify_trace_consistency",
    "save_trace",
    "load_trace",
    "trace_to_dict",
    "trace_from_dict",
    # submodel relation
    "SubmodelResult",
    "implies_exhaustive",
    "refute_by_sampling",
    "check_submodel",
    # auditing
    "AuditReport",
    "AuditViolation",
    "ExecutionAuditor",
    "StallDetected",
    "StalledProcess",
    "StallReport",
]
