"""Persist and reload execution traces (JSON).

Traces are the library's artifacts of record: a counterexample found by
search, a benchmark's worst case, a bug report's failing run.  This module
serialises :class:`~repro.core.types.ExecutionTrace` to JSON and back,
bit-exactly for payloads built from the standard containers (the tagged
encoding below round-trips tuples, sets, frozensets and non-string dict
keys, which plain JSON cannot).

Typical flow::

    save_trace(trace, "counterexample.json")
    ...
    trace = load_trace("counterexample.json")
    replay(trace, my_protocol)          # repro.core.replay
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.types import ExecutionRound, ExecutionTrace, RoundView

__all__ = [
    "encode_value",
    "decode_value",
    "trace_to_dict",
    "trace_from_dict",
    "save_trace",
    "load_trace",
    "TraceEncodingError",
]

_TAG = "__rrfd__"


class TraceEncodingError(TypeError):
    """A payload contained a type the tagged JSON encoding cannot carry."""


def encode_value(value: Any) -> Any:
    """Encode a payload into JSON-safe tagged structures."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {_TAG: "tuple", "items": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return {_TAG: "list", "items": [encode_value(v) for v in value]}
    if isinstance(value, frozenset):
        return {
            _TAG: "frozenset",
            "items": sorted((encode_value(v) for v in value), key=repr),
        }
    if isinstance(value, set):
        return {
            _TAG: "set",
            "items": sorted((encode_value(v) for v in value), key=repr),
        }
    if isinstance(value, dict):
        return {
            _TAG: "dict",
            "items": [
                [encode_value(k), encode_value(v)] for k, v in value.items()
            ],
        }
    raise TraceEncodingError(
        f"cannot encode {type(value).__name__!r} payloads; traces carry "
        "standard containers and scalars only"
    )


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict):
        tag = value.get(_TAG)
        if tag == "tuple":
            return tuple(decode_value(v) for v in value["items"])
        if tag == "list":
            return [decode_value(v) for v in value["items"]]
        if tag == "frozenset":
            return frozenset(decode_value(v) for v in value["items"])
        if tag == "set":
            return {decode_value(v) for v in value["items"]}
        if tag == "dict":
            return {
                decode_value(k): decode_value(v) for k, v in value["items"]
            }
        raise TraceEncodingError(f"unknown tag {tag!r} in serialized trace")
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


def trace_to_dict(trace: ExecutionTrace) -> dict[str, Any]:
    """The JSON-ready representation of a trace."""
    return {
        "format": "rrfd-trace-v1",
        "n": trace.n,
        "inputs": [encode_value(v) for v in trace.inputs],
        "decisions": [encode_value(v) for v in trace.decisions],
        "decided_at": list(trace.decided_at),
        "rounds": [
            {
                "round": record.round,
                "payloads": [encode_value(p) for p in record.payloads],
                "views": [
                    {
                        "pid": view.pid,
                        "messages": [
                            [sender, encode_value(payload)]
                            for sender, payload in sorted(view.messages.items())
                        ],
                        "suspected": sorted(view.suspected),
                    }
                    for view in record.views
                ],
            }
            for record in trace.rounds
        ],
    }


def trace_from_dict(data: dict[str, Any]) -> ExecutionTrace:
    """Rebuild a trace from :func:`trace_to_dict`'s output."""
    if data.get("format") != "rrfd-trace-v1":
        raise TraceEncodingError(
            f"not an rrfd trace (format={data.get('format')!r})"
        )
    n = data["n"]
    trace = ExecutionTrace(
        n=n,
        inputs=tuple(decode_value(v) for v in data["inputs"]),
        decisions=[decode_value(v) for v in data["decisions"]],
        decided_at=list(data["decided_at"]),
    )
    for record in data["rounds"]:
        views = tuple(
            RoundView(
                pid=view["pid"],
                round=record["round"],
                messages={
                    sender: decode_value(payload)
                    for sender, payload in view["messages"]
                },
                suspected=frozenset(view["suspected"]),
                n=n,
            )
            for view in record["views"]
        )
        trace.rounds.append(
            ExecutionRound(
                round=record["round"],
                payloads=tuple(decode_value(p) for p in record["payloads"]),
                views=views,
            )
        )
    return trace


def save_trace(trace: ExecutionTrace, path: str | Path) -> None:
    """Write a trace to ``path`` as JSON."""
    Path(path).write_text(json.dumps(trace_to_dict(trace), indent=2))


def load_trace(path: str | Path) -> ExecutionTrace:
    """Load a trace previously written by :func:`save_trace`."""
    return trace_from_dict(json.loads(Path(path).read_text()))
