"""The RRFD round engine: runs emit/receive algorithms against an adversary.

This is the "system" side of the paper's abstract algorithm format.  Per
round it:

1. collects every process's emission ``m_{i,r}``;
2. asks the adversary (the RRFD) for the suspicion sets ``D(i, r)``;
3. optionally validates them against the model predicate in force;
4. delivers to each process the messages from ``S − D(i,r)`` (plus any
   "extras" — suspected senders the unreliable detector delivers anyway);
5. hands each process its :class:`repro.core.types.RoundView` and records
   decisions.

The engine never blocks: the guarantee ``S(i,r) ∪ D(i,r) = S`` holds by
construction, which is exactly why RRFD systems unify synchrony and
asynchrony — the *predicate*, not the scheduling, encodes the model.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro import obs
from repro.core.adversary import Adversary
from repro.core.algorithm import Protocol, RoundProcess
from repro.core.predicate import Predicate
from repro.core.types import (
    ExecutionRound,
    ExecutionTrace,
    PredicateViolation,
    RoundView,
)
from repro.util.bitset import domain as _bitset_domain, mask_of

__all__ = ["RoundExecutor", "ExecutorSnapshot", "run_protocol"]


class RoundExecutor:
    """Drive a protocol's processes round by round under an adversary.

    Args:
        protocol: the algorithm to run (one state machine per process).
        inputs: per-process input values; ``n = len(inputs)``.
        adversary: the RRFD strategy choosing suspicions.
        predicate: when given, every round of suspicions is validated and a
            :class:`PredicateViolation` is raised on the first bad round —
            this guards experiments against buggy adversaries.
        stop_when_all_decided: end the run once every process has decided.
        crashed_stop_emitting: treat processes in the *cumulative* suspected
            set as crashed — they stop emitting fresh payloads.  Synchronous
            crash executions set this; the default (False) matches the pure
            RRFD view in which "suspected" need not mean "failed".
    """

    def __init__(
        self,
        protocol: Protocol,
        inputs: Sequence[Any],
        adversary: Adversary,
        *,
        predicate: Predicate | None = None,
        stop_when_all_decided: bool = True,
        crashed_stop_emitting: bool = False,
    ) -> None:
        self.n = len(inputs)
        if adversary.n != self.n:
            raise ValueError(
                f"adversary is for n={adversary.n}, inputs give n={self.n}"
            )
        if predicate is not None and predicate.n != self.n:
            raise ValueError(
                f"predicate is for n={predicate.n}, inputs give n={self.n}"
            )
        self.protocol = protocol
        self.inputs = tuple(inputs)
        self.adversary = adversary
        self.predicate = predicate
        self.stop_when_all_decided = stop_when_all_decided
        self.crashed_stop_emitting = crashed_stop_emitting
        self.processes: list[RoundProcess] = protocol.spawn_all(self.inputs)
        self.trace = ExecutionTrace(n=self.n, inputs=self.inputs)
        self._ever_suspected: set[int] = set()
        self._dom = _bitset_domain(self.n)

    # ------------------------------------------------------------------ run

    def step(self) -> ExecutionRound:
        """Execute one round and return its record."""
        r = self.trace.num_rounds + 1
        adversary = self.adversary
        # The D-history is reassembled only for consumers that read it; the
        # model checker's cursor adversary (needs_history=False, no
        # validating predicate) skips the per-round rebuild entirely.
        if self.predicate is not None or adversary.needs_history:
            history = self.trace.d_history
        else:
            history = ()

        if self.crashed_stop_emitting:
            payloads = tuple(
                None if pid in self._ever_suspected else proc.emit(r)
                for pid, proc in enumerate(self.processes)
            )
        else:
            payloads = tuple([proc.emit(r) for proc in self.processes])

        d_round = adversary.suspicions(r, history, payloads)
        if len(d_round) != self.n:
            raise ValueError(
                f"adversary returned {len(d_round)} suspicion sets, expected {self.n}"
            )
        if self.predicate is not None and not self.predicate.allows_extension(
            history, d_round
        ):
            raise PredicateViolation(
                f"round {r}: suspicions {d_round!r} violate "
                f"{self.predicate.describe()}"
            )
        extras = self.adversary.extras(r, history, d_round)
        if len(extras) != self.n:
            raise ValueError(
                f"adversary returned {len(extras)} extras sets, expected {self.n}"
            )

        # Delivery as mask algebra: delivered(i) = (S − D(i)) ∪ extras(i),
        # which covers S by construction, so the views take the trusted
        # constructor (no per-view guarantee re-check) and the memoized bit
        # tuples replace a sorted() per view.  pack_set degrades to a plain
        # element walk for unhashable inputs (an adversary handing back
        # mutable sets).
        dom = self._dom
        full = dom.full
        n = self.n
        views = []
        built: dict[int, dict[int, Any]] = {}
        for pid in range(n):
            suspected = d_round[pid]
            try:
                dmask = dom.pack_set(suspected)
            except TypeError:
                dmask = mask_of(suspected)
            extra = extras[pid]
            delivered = (full & ~dmask) | (
                dom.pack_set(extra) if extra else 0
            )
            # Processes with the same delivered set share one messages dict
            # (views never mutate it); in benign rounds that is one dict for
            # the whole round instead of n.
            messages = built.get(delivered)
            if messages is None:
                messages = built[delivered] = {
                    sender: payloads[sender] for sender in dom.set_bits(delivered)
                }
            views.append(RoundView.trusted(pid, r, messages, suspected, n))

        # Absorb after all views are built so no process's state update can
        # influence another's view within the same round.
        trace = self.trace
        for pid, (proc, view) in enumerate(zip(self.processes, views)):
            before = proc.decision
            proc.absorb(view)
            decision = proc.decision
            if decision is not None and before is None:
                trace.record_decision(pid, decision, r)

        for suspected in d_round:
            self._ever_suspected.update(suspected)

        # Built without the dataclass constructor (a frozen dataclass pays
        # object.__setattr__ per field); the cached suspicions property is
        # seeded directly since the executor already holds the round tuple.
        record = object.__new__(ExecutionRound)
        fields = record.__dict__
        fields["round"] = r
        fields["payloads"] = payloads
        fields["views"] = tuple(views)
        if type(d_round) is tuple:
            fields["suspicions"] = d_round
        trace.rounds.append(record)
        tracer = obs.current_tracer()
        if tracer.enabled:
            tracer.event(
                "executor.round",
                round=r,
                decided=sum(1 for d in self.trace.decided_at if d is not None),
                suspected=sorted(self._ever_suspected),
            )
        return record

    def run(self, max_rounds: int) -> ExecutionTrace:
        """Run until all processes decide or ``max_rounds`` rounds elapse."""
        if max_rounds < 0:
            raise ValueError(f"max_rounds must be ≥ 0, got {max_rounds}")
        tracer = obs.current_tracer()
        if tracer.enabled:
            tracer.begin("executor.run", n=self.n, max_rounds=max_rounds)
        try:
            for _ in range(max_rounds):
                if self.stop_when_all_decided and self.trace.all_decided:
                    break
                self.step()
        finally:
            if tracer.enabled:
                tracer.end(
                    "executor.run",
                    rounds=self.trace.num_rounds,
                    all_decided=self.trace.all_decided,
                )
        return self.trace

    # ---------------------------------------------------------------- forking

    def fork(self, *, adversary: Adversary | None = None) -> "RoundExecutor":
        """An independent executor resuming from the current round boundary.

        Copies the process states (via :meth:`RoundProcess.copy`), the trace
        tail (the per-round records are frozen and shared; the containers
        and decision arrays are fresh) and the cumulative suspicion set, so
        the fork and the original can be stepped down *different* suspicion
        futures without influencing each other.  This is what lets the
        incremental model checker pay one protocol round per explored tree
        edge instead of replaying each history from round 1.

        ``adversary`` replaces the RRFD strategy on the fork; by default the
        fork shares the original's adversary *object* — fine for stateless
        strategies, but stateful ones should be replaced.
        """
        clone = object.__new__(RoundExecutor)
        clone.n = self.n
        clone.protocol = self.protocol
        clone.inputs = self.inputs
        if adversary is None:
            clone.adversary = self.adversary  # shared: n already matches
        else:
            if adversary.n != self.n:
                raise ValueError(
                    f"adversary is for n={adversary.n}, executor has n={self.n}"
                )
            clone.adversary = adversary
        clone.predicate = self.predicate
        clone.stop_when_all_decided = self.stop_when_all_decided
        clone.crashed_stop_emitting = self.crashed_stop_emitting
        clone.processes = [proc.copy() for proc in self.processes]
        # Built without the dataclass constructor: the source trace is
        # already well-formed, so the __post_init__ defaulting is dead
        # weight on the once-per-tree-edge fork path.
        trace = object.__new__(ExecutionTrace)
        trace.n = self.n
        trace.inputs = self.inputs
        trace.rounds = list(self.trace.rounds)
        trace.decisions = list(self.trace.decisions)
        trace.decided_at = list(self.trace.decided_at)
        clone.trace = trace
        clone._ever_suspected = set(self._ever_suspected)
        clone._dom = self._dom
        return clone

    def snapshot(self) -> "ExecutorSnapshot":
        """Capture the executor's state; :meth:`ExecutorSnapshot.restore`
        later yields fresh executors resuming from this round boundary
        (restorable any number of times)."""
        return ExecutorSnapshot(self.fork())


class ExecutorSnapshot:
    """A frozen copy of a :class:`RoundExecutor` at a round boundary.

    Holds a private fork that is never stepped; every :meth:`restore` forks
    it again, so one snapshot can seed many divergent continuations.
    """

    def __init__(self, frozen: RoundExecutor) -> None:
        self._frozen = frozen

    @property
    def rounds_executed(self) -> int:
        return self._frozen.trace.num_rounds

    def restore(self, *, adversary: Adversary | None = None) -> RoundExecutor:
        """A fresh executor continuing from the captured state."""
        return self._frozen.fork(adversary=adversary)


def run_protocol(
    protocol: Protocol,
    inputs: Sequence[Any],
    adversary: Adversary,
    *,
    max_rounds: int,
    predicate: Predicate | None = None,
    crashed_stop_emitting: bool = False,
) -> ExecutionTrace:
    """One-shot convenience wrapper around :class:`RoundExecutor`."""
    executor = RoundExecutor(
        protocol,
        inputs,
        adversary,
        predicate=predicate,
        crashed_stop_emitting=crashed_stop_emitting,
    )
    return executor.run(max_rounds)
