"""Predicate abstraction: an RRFD *model* is a predicate over suspicions.

Different RRFD systems differ only in the predicates over the sets
``D(i, r)`` that they guarantee (paper, Section 1).  A :class:`Predicate`
judges finite suspicion histories; a history is a tuple of rounds, each round
a tuple of ``n`` frozensets (``history[r-1][i] = D(i, r)``).

Two operations matter beyond the membership test:

- *constructive sampling* (:meth:`Predicate.sample_round`): draw a random
  next round of suspicions consistent with the history, so adversaries can
  generate executions of a model without rejection loops;
- *implication checking*: ``P_A ⇒ P_B`` is the paper's submodel relation
  ("A is a submodel of B"); :mod:`repro.core.submodel` checks it
  exhaustively for small ``n``/round-counts and probabilistically
  otherwise.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.core.types import DHistory, DRound, ProcessId
from repro.util.sets import random_subset

__all__ = [
    "Predicate",
    "Conjunction",
    "Unconstrained",
    "cumulative_suspected",
    "round_union",
    "round_intersection",
]


def round_union(d_round: DRound) -> frozenset[ProcessId]:
    """``⋃_i D(i, r)`` for one round."""
    result: frozenset[ProcessId] = frozenset()
    for suspected in d_round:
        result |= suspected
    return result


def round_intersection(d_round: DRound) -> frozenset[ProcessId]:
    """``⋂_i D(i, r)`` for one round."""
    if not d_round:
        return frozenset()
    result = d_round[0]
    for suspected in d_round[1:]:
        result &= suspected
    return result


def cumulative_suspected(history: DHistory) -> frozenset[ProcessId]:
    """``⋃_{r} ⋃_i D(i, r)`` — everyone ever suspected by anyone."""
    result: frozenset[ProcessId] = frozenset()
    for d_round in history:
        result |= round_union(d_round)
    return result


class Predicate(ABC):
    """A predicate over finite suspicion histories, defining an RRFD model.

    ``is_symmetric`` declares invariance under process permutations: for
    every permutation ``π`` of ``range(n)``, ``allows(π·h) == allows(h)``,
    where ``(π·h)(π(i), r) = π(h(i, r))`` (both *who* suspects and *whom*
    they suspect are renamed).  Every catalog predicate
    (:mod:`repro.core.predicates`) is symmetric — their clauses only
    mention cardinalities, self-membership and set algebra over renamed
    ids.  The default is ``False`` so unknown user predicates soundly
    disable the model checker's symmetry reduction.
    """

    #: True iff the predicate is invariant under process permutations.
    is_symmetric: bool = False

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"n must be positive, got {n}")
        self.n = n
        self.everyone = frozenset(range(n))

    # ------------------------------------------------------------------ API

    def allows(self, history: DHistory) -> bool:
        """Whether the whole history satisfies this model's guarantee.

        Beyond the model-specific condition (:meth:`_allows`), every RRFD
        system forbids ``D(i, r) = S``: interpreting ``D`` as "late
        processes", not all processes can be late (paper, Section 1).
        """
        for d_round in history:
            self._validate_round(d_round)
            if any(len(suspected) >= self.n for suspected in d_round):
                return False
        return self._allows(history)

    @abstractmethod
    def _allows(self, history: DHistory) -> bool:
        """The model-specific condition; inputs are already shape-checked."""

    def allows_extension(self, history: DHistory, new_round: DRound) -> bool:
        """Whether ``history + (new_round,)`` still satisfies the predicate.

        Subclasses with purely per-round conditions may override this for
        speed; the default re-checks the extended history.
        """
        return self.allows(history + (new_round,))

    def extension_state(self, history: DHistory) -> object:
        """A hashable summary through which ``allows_extension`` sees history.

        Contract: for every *admissible* history ``h``,
        ``allows_extension(h, d)`` must be a function of
        ``(extension_state(h), d)`` alone — two admissible histories with
        equal summaries admit exactly the same next rounds.  The model
        checker memoizes admissible-candidate generation per summary, so a
        tight summary (a cumulative suspected set, ``()`` for per-round
        predicates) collapses thousands of sibling regenerations into one.

        The default returns the history itself: always sound, shares
        nothing across distinct histories (it still deduplicates the same
        history re-explored under different inputs).
        """
        return history

    @abstractmethod
    def sample_round(self, rng: random.Random, history: DHistory) -> DRound:
        """Draw a random next round consistent with ``history``.

        Must always return a round such that ``allows_extension`` holds —
        constructive samplers are the basis of the random adversaries used
        throughout the experiments.
        """

    @property
    def name(self) -> str:
        return type(self).__name__

    def describe(self) -> str:
        """Human-readable statement of the guarantee (paper notation)."""
        return self.name

    # -------------------------------------------------------------- helpers

    def _validate_round(self, d_round: DRound) -> None:
        if len(d_round) != self.n:
            raise ValueError(
                f"round has {len(d_round)} suspicion sets, expected n={self.n}"
            )
        for pid, suspected in enumerate(d_round):
            if not suspected <= self.everyone:
                raise ValueError(
                    f"D({pid}) = {sorted(suspected)} contains ids outside S"
                )

    def __and__(self, other: "Predicate") -> "Conjunction":
        return Conjunction(self, other)

    def __repr__(self) -> str:
        return f"{self.name}(n={self.n})"


class Conjunction(Predicate):
    """Conjunction of predicates over the same process set.

    Sampling draws from the *first* conjunct and rejects against the rest,
    so conjunctions sample efficiently when the first conjunct is the most
    restrictive.  ``max_attempts`` bounds the rejection loop.
    """

    def __init__(self, *parts: Predicate, max_attempts: int = 10_000) -> None:
        if not parts:
            raise ValueError("Conjunction needs at least one predicate")
        ns = {p.n for p in parts}
        if len(ns) != 1:
            raise ValueError(f"conjuncts disagree on n: {sorted(ns)}")
        super().__init__(parts[0].n)
        self.parts = parts
        self.max_attempts = max_attempts
        # Symmetric iff every conjunct is (instance attribute shadows the
        # class default).
        self.is_symmetric = all(part.is_symmetric for part in parts)

    def _allows(self, history: DHistory) -> bool:
        return all(part.allows(history) for part in self.parts)

    def extension_state(self, history: DHistory) -> object:
        return tuple(part.extension_state(history) for part in self.parts)

    def sample_round(self, rng: random.Random, history: DHistory) -> DRound:
        for _ in range(self.max_attempts):
            candidate = self.parts[0].sample_round(rng, history)
            if all(part.allows_extension(history, candidate) for part in self.parts[1:]):
                return candidate
        raise RuntimeError(
            f"could not sample a round satisfying {self.describe()} after "
            f"{self.max_attempts} attempts"
        )

    def describe(self) -> str:
        return " ∧ ".join(part.describe() for part in self.parts)


class Unconstrained(Predicate):
    """The trivial model: the detector may suspect anything.

    Useful as the top of the submodel lattice and as a base case in tests.
    Only the framework-level guarantee ``D(i,r) ≠ S`` (enforced for every
    predicate by :meth:`Predicate.allows`) constrains it.
    """

    is_symmetric = True

    def _allows(self, history: DHistory) -> bool:
        return True

    def extension_state(self, history: DHistory) -> object:
        return ()

    def sample_round(self, rng: random.Random, history: DHistory) -> DRound:
        return tuple(
            random_subset(self.everyone, rng, max_size=self.n - 1)
            for _ in range(self.n)
        )
