"""Predicate abstraction: an RRFD *model* is a predicate over suspicions.

Different RRFD systems differ only in the predicates over the sets
``D(i, r)`` that they guarantee (paper, Section 1).  A :class:`Predicate`
judges finite suspicion histories; a history is a tuple of rounds, each round
a tuple of ``n`` frozensets (``history[r-1][i] = D(i, r)``).

Two operations matter beyond the membership test:

- *constructive sampling* (:meth:`Predicate.sample_round`): draw a random
  next round of suspicions consistent with the history, so adversaries can
  generate executions of a model without rejection loops;
- *implication checking*: ``P_A ⇒ P_B`` is the paper's submodel relation
  ("A is a submodel of B"); :mod:`repro.core.submodel` checks it
  exhaustively for small ``n``/round-counts and probabilistically
  otherwise.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.core.types import DHistory, DRound, PackedDHistory, PackedDRound, ProcessId
from repro.util.bitset import BitsetDomain, domain as bitset_domain
from repro.util.sets import all_subset_families, random_subset

__all__ = [
    "Predicate",
    "PackedPredicate",
    "FastPackedPredicate",
    "Conjunction",
    "Unconstrained",
    "cumulative_suspected",
    "round_union",
    "round_intersection",
]


def round_union(d_round: DRound) -> frozenset[ProcessId]:
    """``⋃_i D(i, r)`` for one round."""
    result: frozenset[ProcessId] = frozenset()
    for suspected in d_round:
        result |= suspected
    return result


def round_intersection(d_round: DRound) -> frozenset[ProcessId]:
    """``⋂_i D(i, r)`` for one round."""
    if not d_round:
        return frozenset()
    result = d_round[0]
    for suspected in d_round[1:]:
        result &= suspected
    return result


def cumulative_suspected(history: DHistory) -> frozenset[ProcessId]:
    """``⋃_{r} ⋃_i D(i, r)`` — everyone ever suspected by anyone."""
    result: frozenset[ProcessId] = frozenset()
    for d_round in history:
        result |= round_union(d_round)
    return result


class Predicate(ABC):
    """A predicate over finite suspicion histories, defining an RRFD model.

    ``is_symmetric`` declares invariance under process permutations: for
    every permutation ``π`` of ``range(n)``, ``allows(π·h) == allows(h)``,
    where ``(π·h)(π(i), r) = π(h(i, r))`` (both *who* suspects and *whom*
    they suspect are renamed).  Every catalog predicate
    (:mod:`repro.core.predicates`) is symmetric — their clauses only
    mention cardinalities, self-membership and set algebra over renamed
    ids.  The default is ``False`` so unknown user predicates soundly
    disable the model checker's symmetry reduction.
    """

    #: True iff the predicate is invariant under process permutations.
    is_symmetric: bool = False

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"n must be positive, got {n}")
        self.n = n
        self.everyone = frozenset(range(n))

    # ------------------------------------------------------------------ API

    def allows(self, history: DHistory) -> bool:
        """Whether the whole history satisfies this model's guarantee.

        Beyond the model-specific condition (:meth:`_allows`), every RRFD
        system forbids ``D(i, r) = S``: interpreting ``D`` as "late
        processes", not all processes can be late (paper, Section 1).
        """
        for d_round in history:
            self._validate_round(d_round)
            if any(len(suspected) >= self.n for suspected in d_round):
                return False
        return self._allows(history)

    @abstractmethod
    def _allows(self, history: DHistory) -> bool:
        """The model-specific condition; inputs are already shape-checked."""

    def allows_extension(self, history: DHistory, new_round: DRound) -> bool:
        """Whether ``history + (new_round,)`` still satisfies the predicate.

        Subclasses with purely per-round conditions may override this for
        speed; the default re-checks the extended history.
        """
        return self.allows(history + (new_round,))

    def extension_state(self, history: DHistory) -> object:
        """A hashable summary through which ``allows_extension`` sees history.

        Contract: for every *admissible* history ``h``,
        ``allows_extension(h, d)`` must be a function of
        ``(extension_state(h), d)`` alone — two admissible histories with
        equal summaries admit exactly the same next rounds.  The model
        checker memoizes admissible-candidate generation per summary, so a
        tight summary (a cumulative suspected set, ``()`` for per-round
        predicates) collapses thousands of sibling regenerations into one.

        The default returns the history itself: always sound, shares
        nothing across distinct histories (it still deduplicates the same
        history re-explored under different inputs).
        """
        return history

    def packed(self) -> "PackedPredicate":
        """The packed (integer-bitmask) admissibility view of this model.

        The base implementation returns the *bridged reference path*: a
        :class:`PackedPredicate` that unpacks every round and delegates to
        the set-based methods — always sound, never fast.  Catalog
        predicates override this to return a :class:`FastPackedPredicate`
        whose clauses are pure bit operations; their overrides guard on
        exact type so user subclasses with changed semantics fall back to
        the bridge (and hence the set-based oracle) automatically.
        """
        return PackedPredicate(self)

    @abstractmethod
    def sample_round(self, rng: random.Random, history: DHistory) -> DRound:
        """Draw a random next round consistent with ``history``.

        Must always return a round such that ``allows_extension`` holds —
        constructive samplers are the basis of the random adversaries used
        throughout the experiments.
        """

    @property
    def name(self) -> str:
        return type(self).__name__

    def describe(self) -> str:
        """Human-readable statement of the guarantee (paper notation)."""
        return self.name

    # -------------------------------------------------------------- helpers

    def _validate_round(self, d_round: DRound) -> None:
        if len(d_round) != self.n:
            raise ValueError(
                f"round has {len(d_round)} suspicion sets, expected n={self.n}"
            )
        for pid, suspected in enumerate(d_round):
            if not suspected <= self.everyone:
                raise ValueError(
                    f"D({pid}) = {sorted(suspected)} contains ids outside S"
                )

    def __and__(self, other: "Predicate") -> "Conjunction":
        return Conjunction(self, other)

    def __repr__(self) -> str:
        return f"{self.name}(n={self.n})"


class PackedPredicate:
    """Set-based reference semantics exposed over packed rounds.

    This is the *bridge*: every query unpacks (through the interned
    per-``n`` tables of :mod:`repro.util.bitset`) and delegates to the
    owning :class:`Predicate`'s frozenset methods.  It is sound for any
    predicate, including user subclasses the fast path knows nothing
    about, and it doubles as the differential oracle the packed
    implementations are tested against.

    ``fast`` is False here; the exploration engine only routes onto the
    packed hot path when ``predicate.packed().fast`` — everything else
    keeps running the set-based reference implementation.
    """

    fast = False

    def __init__(self, predicate: Predicate) -> None:
        self.predicate = predicate
        self.n = predicate.n
        self.domain: BitsetDomain = bitset_domain(predicate.n)

    # -- queries over packed histories --------------------------------------

    def extension_state(self, packed_history: PackedDHistory) -> object:
        """Hashable admissibility summary (see `Predicate.extension_state`)."""
        return self.predicate.extension_state(
            self.domain.unpack_history(packed_history)
        )

    def allows_extension(self, packed_history: PackedDHistory, rint: PackedDRound) -> bool:
        """Whether the packed round extends the packed history admissibly."""
        return self.predicate.allows_extension(
            self.domain.unpack_history(packed_history),
            self.domain.unpack_round(rint),
        )

    def allows_history(self, packed_history: PackedDHistory) -> bool:
        """Whether the whole packed history satisfies the predicate."""
        return self.predicate.allows(self.domain.unpack_history(packed_history))

    def admissible_round_ints(
        self, packed_history: PackedDHistory, *, max_d_size: int | None = None
    ) -> list[PackedDRound]:
        """All admissible next rounds, packed, in canonical enumeration order.

        The order is exactly that of the set-based enumerator
        (``all_subset_families`` filtered by ``allows_extension``) — the
        property the engine's differential tests pin down.
        """
        dom = self.domain
        history = dom.unpack_history(packed_history)
        predicate = self.predicate
        return [
            dom.pack_round(family)
            for family in all_subset_families(self.n, max_size=max_d_size)
            if predicate.allows_extension(history, family)
        ]

    def sample_round_int(
        self, rng: random.Random, packed_history: PackedDHistory
    ) -> PackedDRound:
        """Draw a random admissible next round, packed."""
        return self.domain.pack_round(
            self.predicate.sample_round(
                rng, self.domain.unpack_history(packed_history)
            )
        )


class FastPackedPredicate(PackedPredicate):
    """Bit-op admissibility kernel for a predicate with prefix-closed clauses.

    Subclasses express their model as four pieces, all over per-process
    masks (``int`` bitmasks of suspected ids):

    * a **state** — the packed twin of ``Predicate.extension_state``:
      ``initial_state()`` / ``advance(state, rint)`` fold a packed history
      into the summary through which extensions are judged;
    * **per-mask tables** — ``size_bound(state)`` bounds ``|D(i)|`` so
      candidate masks come precomputed off the size-ranked mask table
      (``|D| ≤ f``-style popcount prefixes); ``pid_masks`` may narrow
      further per process; ``mask_ok`` is the same condition as an exact
      test for arbitrary masks;
    * a **push filter** — ``push(state, aux, pid, mask, masks)`` threads
      an aggregate ``aux`` across processes ``0..pid`` and returns
      ``None`` to prune; it must be a *necessary* condition (never prunes
      an admissible completion), which makes backtracking enumeration
      sound while keeping the canonical order;
    * an **accept check** — ``accept(state, aux, masks)`` finishes the
      exact per-round test once all ``n`` masks are placed.

    The framework-level rule ``D(i, r) ≠ S`` is enforced structurally: the
    mask tables cap sizes at ``n - 1``, and ``allows_round`` re-checks it
    for arbitrary masks.  The contract assumes the predicate is
    prefix-closed (every prefix of an allowed history is allowed), which
    holds for the entire catalog.
    """

    fast = True

    # -- state -------------------------------------------------------------

    def initial_state(self) -> object:
        return ()

    def advance(self, state: object, rint: PackedDRound) -> object:
        return state

    def extension_state(self, packed_history: PackedDHistory) -> object:
        state = self.initial_state()
        for rint in packed_history:
            state = self.advance(state, rint)
        return state

    # -- per-mask tables -----------------------------------------------------

    def size_bound(self, state: object) -> int:
        """Largest admissible ``|D(i)|`` under ``state`` (≤ n - 1)."""
        return self.n - 1

    def pid_masks(
        self, state: object, pid: int, max_d_size: int | None
    ) -> tuple[int, ...]:
        """Candidate masks for process ``pid``, in enumeration order.

        Must contain every mask admissible for ``pid`` in some completion
        (a superset filter), listed in ``masks_by_rank`` order so the
        enumeration sequence matches the set-based oracle.
        """
        bound = self.size_bound(state)
        if max_d_size is not None and max_d_size < bound:
            bound = max_d_size
        return self.domain.masks_by_rank(bound)

    def mask_ok(self, state: object, pid: int, mask: int) -> bool:
        """Exact per-mask necessary condition (mirrors ``pid_masks``)."""
        return mask.bit_count() <= self.size_bound(state)

    # -- push filter / accept ------------------------------------------------

    def begin(self, state: object) -> object:
        """Seed aggregate for one round's push chain (must not be None)."""
        return ()

    def push(
        self, state: object, aux: object, pid: int, mask: int, masks: list[int]
    ) -> object | None:
        """Fold ``mask`` into ``aux``; return None to prune this branch.

        ``masks[0:pid]`` are the already-placed masks of this round.
        """
        return aux

    def accept(self, state: object, aux: object, masks: list[int]) -> bool:
        """Exact round test once all masks are placed (push already passed)."""
        return True

    # -- derived queries -----------------------------------------------------

    def allows_round(self, state: object, rint: PackedDRound) -> bool:
        """Exact packed twin of ``allows_extension`` from a folded state."""
        masks = list(self.domain.round_masks(rint))
        full = self.domain.full
        aux = self.begin(state)
        for pid, mask in enumerate(masks):
            if mask == full or not self.mask_ok(state, pid, mask):
                return False
            aux = self.push(state, aux, pid, mask, masks)
            if aux is None:
                return False
        return self.accept(state, aux, masks)

    def allows_extension(self, packed_history: PackedDHistory, rint: PackedDRound) -> bool:
        return self.allows_round(self.extension_state(packed_history), rint)

    def allows_history(self, packed_history: PackedDHistory) -> bool:
        state = self.initial_state()
        for rint in packed_history:
            if not self.allows_round(state, rint):
                return False
            state = self.advance(state, rint)
        return True

    def admissible_round_ints(
        self,
        packed_history: PackedDHistory,
        *,
        max_d_size: int | None = None,
        state: object | None = None,
    ) -> list[PackedDRound]:
        """Backtracking enumeration over per-process mask tables.

        Visits candidate families with process 0 varying slowest and each
        process's masks in size-ranked order — the exact sequence of the
        set-based enumerator — while ``push`` prunes inadmissible prefixes
        wholesale.  At n=5 this is the difference between 33.5M raw
        families and the admissible few.
        """
        if state is None:
            state = self.extension_state(packed_history)
        n = self.n
        tables = [self.pid_masks(state, pid, max_d_size) for pid in range(n)]
        masks = [0] * n
        out: list[PackedDRound] = []
        pack = self.domain.pack_masks
        push = self.push
        accept = self.accept
        last = n - 1

        def walk(pid: int, aux: object) -> None:
            table = tables[pid]
            if pid == last:
                for mask in table:
                    masks[pid] = mask
                    nxt = push(state, aux, pid, mask, masks)
                    if nxt is not None and accept(state, nxt, masks):
                        out.append(pack(masks))
            else:
                for mask in table:
                    masks[pid] = mask
                    nxt = push(state, aux, pid, mask, masks)
                    if nxt is not None:
                        walk(pid + 1, nxt)

        walk(0, self.begin(state))
        return out


class Conjunction(Predicate):
    """Conjunction of predicates over the same process set.

    Sampling draws from the *first* conjunct and rejects against the rest,
    so conjunctions sample efficiently when the first conjunct is the most
    restrictive.  ``max_attempts`` bounds the rejection loop.
    """

    def __init__(self, *parts: Predicate, max_attempts: int = 10_000) -> None:
        if not parts:
            raise ValueError("Conjunction needs at least one predicate")
        ns = {p.n for p in parts}
        if len(ns) != 1:
            raise ValueError(f"conjuncts disagree on n: {sorted(ns)}")
        super().__init__(parts[0].n)
        self.parts = parts
        self.max_attempts = max_attempts
        # Symmetric iff every conjunct is (instance attribute shadows the
        # class default).
        self.is_symmetric = all(part.is_symmetric for part in parts)

    def _allows(self, history: DHistory) -> bool:
        return all(part.allows(history) for part in self.parts)

    def extension_state(self, history: DHistory) -> object:
        return tuple(part.extension_state(history) for part in self.parts)

    def sample_round(self, rng: random.Random, history: DHistory) -> DRound:
        for _ in range(self.max_attempts):
            candidate = self.parts[0].sample_round(rng, history)
            if all(part.allows_extension(history, candidate) for part in self.parts[1:]):
                return candidate
        raise RuntimeError(
            f"could not sample a round satisfying {self.describe()} after "
            f"{self.max_attempts} attempts"
        )

    def describe(self) -> str:
        return " ∧ ".join(part.describe() for part in self.parts)

    def packed(self) -> PackedPredicate:
        if type(self) is not Conjunction:
            return Predicate.packed(self)
        parts = tuple(part.packed() for part in self.parts)
        if all(part.fast for part in parts):
            return _PackedConjunction(self, parts)
        return PackedPredicate(self)


class _PackedConjunction(FastPackedPredicate):
    """Fast conjunction: states, tables and filters combine pointwise."""

    def __init__(self, predicate: Conjunction, parts: tuple[PackedPredicate, ...]) -> None:
        super().__init__(predicate)
        self.parts = parts

    def initial_state(self) -> object:
        return tuple(part.initial_state() for part in self.parts)

    def advance(self, state: object, rint: PackedDRound) -> object:
        return tuple(
            part.advance(s, rint) for part, s in zip(self.parts, state)
        )

    def size_bound(self, state: object) -> int:
        return min(part.size_bound(s) for part, s in zip(self.parts, state))

    def pid_masks(self, state: object, pid: int, max_d_size: int | None) -> tuple[int, ...]:
        masks = self.parts[0].pid_masks(state[0], pid, max_d_size)
        rest = tuple(zip(self.parts[1:], state[1:]))
        if not rest:
            return masks
        return tuple(
            m for m in masks if all(p.mask_ok(s, pid, m) for p, s in rest)
        )

    def mask_ok(self, state: object, pid: int, mask: int) -> bool:
        return all(
            part.mask_ok(s, pid, mask) for part, s in zip(self.parts, state)
        )

    def begin(self, state: object) -> object:
        return tuple(part.begin(s) for part, s in zip(self.parts, state))

    def push(self, state, aux, pid, mask, masks):
        out = []
        for part, s, a in zip(self.parts, state, aux):
            nxt = part.push(s, a, pid, mask, masks)
            if nxt is None:
                return None
            out.append(nxt)
        return tuple(out)

    def accept(self, state, aux, masks) -> bool:
        return all(
            part.accept(s, a, masks)
            for part, s, a in zip(self.parts, state, aux)
        )


class Unconstrained(Predicate):
    """The trivial model: the detector may suspect anything.

    Useful as the top of the submodel lattice and as a base case in tests.
    Only the framework-level guarantee ``D(i,r) ≠ S`` (enforced for every
    predicate by :meth:`Predicate.allows`) constrains it.
    """

    is_symmetric = True

    def _allows(self, history: DHistory) -> bool:
        return True

    def extension_state(self, history: DHistory) -> object:
        return ()

    def packed(self) -> PackedPredicate:
        # FastPackedPredicate's defaults are exactly the trivial model
        # (only the framework rule D ≠ S, via the n-1 size bound).
        if type(self) is not Unconstrained:
            return Predicate.packed(self)
        return FastPackedPredicate(self)

    def sample_round(self, rng: random.Random, history: DHistory) -> DRound:
        return tuple(
            random_subset(self.everyone, rng, max_size=self.n - 1)
            for _ in range(self.n)
        )
