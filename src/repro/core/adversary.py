"""Adversaries: the entities that *are* the round-by-round fault detector.

The paper inverts the classical failure-detector view: the RRFD is not a
helpful oracle bolted onto a system, it is an integral, *adversarial* part of
the system.  The more freedom it has in choosing the sets ``D(i, r)``, the
weaker the model.  Accordingly, an :class:`Adversary` here is any strategy
that produces a round of suspicions given the history (and, for
content-aware adversaries, the payloads in flight).

Adversaries may also exercise the detector's *unreliability*: delivering a
message from a process while simultaneously flagging it faulty.  That is the
``extras`` channel — senders that are suspected yet delivered anyway.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, Callable, Mapping, Sequence

from repro.core.predicate import Predicate, cumulative_suspected
from repro.core.types import DHistory, DRound, ProcessId, Round
from repro.util.sets import random_subset

__all__ = [
    "Adversary",
    "FailureFreeAdversary",
    "PredicateAdversary",
    "ScriptedAdversary",
    "CrashPatternAdversary",
    "FunctionAdversary",
]


class Adversary(ABC):
    """Strategy choosing each round's suspicions (and optional extras)."""

    #: Whether :meth:`suspicions`/:meth:`extras` read their ``history``
    #: argument.  The executor reassembles the D-history every round only
    #: when this is True; strategies that are driven externally (the model
    #: checker's cursor adversary) set it False and receive ``()`` instead.
    #: Leave True on any class whose subclasses might consult the history.
    needs_history = True

    def __init__(self, n: int) -> None:
        self.n = n
        self.everyone = frozenset(range(n))
        self._no_extras = (frozenset(),) * n

    @abstractmethod
    def suspicions(
        self, round_number: Round, history: DHistory, payloads: Sequence[Any]
    ) -> DRound:
        """Return ``(D(0,r), ..., D(n-1,r))`` for this round."""

    def extras(
        self, round_number: Round, history: DHistory, d_round: DRound
    ) -> tuple[frozenset[ProcessId], ...]:
        """Suspected senders whose messages are delivered anyway.

        Defaults to none: process ``i`` receives exactly from ``S − D(i,r)``.
        Overriding this models the unreliable detector that both delivers
        from and flags the same process.
        """
        return self._no_extras


class FailureFreeAdversary(Adversary):
    """The benign detector: nobody is ever suspected."""

    def suspicions(
        self, round_number: Round, history: DHistory, payloads: Sequence[Any]
    ) -> DRound:
        return tuple(frozenset() for _ in range(self.n))


class PredicateAdversary(Adversary):
    """Sample suspicions from a model predicate's constructive sampler.

    This is the workhorse of the experiments: random executions of a model
    are executions against a :class:`PredicateAdversary` over its predicate.
    ``overlap_prob`` optionally delivers each suspected sender's message
    anyway with the given probability, exercising detector unreliability.
    """

    def __init__(
        self,
        predicate: Predicate,
        rng: random.Random,
        *,
        overlap_prob: float = 0.0,
    ) -> None:
        super().__init__(predicate.n)
        if not 0.0 <= overlap_prob <= 1.0:
            raise ValueError(f"overlap_prob must be in [0,1], got {overlap_prob}")
        self.predicate = predicate
        self.rng = rng
        self.overlap_prob = overlap_prob

    def suspicions(
        self, round_number: Round, history: DHistory, payloads: Sequence[Any]
    ) -> DRound:
        return self.predicate.sample_round(self.rng, history)

    def extras(
        self, round_number: Round, history: DHistory, d_round: DRound
    ) -> tuple[frozenset[ProcessId], ...]:
        if self.overlap_prob == 0.0:
            return super().extras(round_number, history, d_round)
        return tuple(
            frozenset(
                sender
                for sender in suspected
                if self.rng.random() < self.overlap_prob
            )
            for suspected in d_round
        )


class ScriptedAdversary(Adversary):
    """Replay a fixed suspicion history (e.g. from a recorded trace).

    Rounds beyond the script are failure-free.  Useful for regression tests,
    replaying counterexamples found by exhaustive search, and driving the
    executor from a simulated substrate's observed fault pattern.
    """

    def __init__(self, n: int, script: Sequence[DRound]) -> None:
        super().__init__(n)
        for d_round in script:
            if len(d_round) != n:
                raise ValueError(
                    f"scripted round has {len(d_round)} sets, expected {n}"
                )
        self.script = list(script)

    def suspicions(
        self, round_number: Round, history: DHistory, payloads: Sequence[Any]
    ) -> DRound:
        if round_number - 1 < len(self.script):
            return self.script[round_number - 1]
        return tuple(frozenset() for _ in range(self.n))


class CrashPatternAdversary(Adversary):
    """Deterministic synchronous crash semantics from a crash schedule.

    ``crashes[pid] = r`` means process ``pid`` crashes *during* round ``r``:
    in round ``r`` an adversary-chosen subset of processes misses its message
    (``partial_receivers``, or a random subset when a generator is given);
    from round ``r + 1`` on, everyone suspects it.  This realises the
    :class:`repro.core.predicates.CrashSync` predicate and is the worst-case
    driver for the synchronous lower-bound experiments (E5): one new crash
    per round keeps algorithms undecided the longest.
    """

    def __init__(
        self,
        n: int,
        crashes: Mapping[ProcessId, Round],
        *,
        rng: random.Random | None = None,
        missed_by: Mapping[ProcessId, frozenset[ProcessId]] | None = None,
    ) -> None:
        super().__init__(n)
        for pid, r in crashes.items():
            if not 0 <= pid < n:
                raise ValueError(f"crash pid {pid} out of range")
            if r < 1:
                raise ValueError(f"crash round must be ≥ 1, got {r}")
        self.crashes = dict(crashes)
        self.rng = rng
        self.missed_by = dict(missed_by or {})

    def _miss_set(self, pid: ProcessId) -> frozenset[ProcessId]:
        if pid in self.missed_by:
            return self.missed_by[pid]
        if self.rng is None:
            # Default worst case: everyone except the crasher misses it.
            return self.everyone - {pid}
        return random_subset(self.everyone, self.rng, exclude=(pid,))

    def suspicions(
        self, round_number: Round, history: DHistory, payloads: Sequence[Any]
    ) -> DRound:
        crashed_before = frozenset(
            pid for pid, r in self.crashes.items() if r < round_number
        )
        crashing_now = [
            pid for pid, r in self.crashes.items() if r == round_number
        ]
        suspicions = [set(crashed_before) - {pid} for pid in range(self.n)]
        for crasher in crashing_now:
            for receiver in self._miss_set(crasher):
                if receiver != crasher:
                    suspicions[receiver].add(crasher)
        # Crashed processes' own views are irrelevant; give them a view that
        # keeps the predicate satisfied.  Never self-suspect: a process that
        # crashed *silently* (nobody missed its last message) counts as alive
        # for the predicate's self-clause until someone suspects it.
        for pid in crashed_before:
            suspicions[pid] = (set(crashed_before) | set(crashing_now)) - {pid}
        return tuple(frozenset(s) for s in suspicions)


class FunctionAdversary(Adversary):
    """Adapt a plain function ``(round, history, payloads) -> DRound``."""

    def __init__(
        self,
        n: int,
        fn: Callable[[Round, DHistory, Sequence[Any]], DRound],
    ) -> None:
        super().__init__(n)
        self.fn = fn

    def suspicions(
        self, round_number: Round, history: DHistory, payloads: Sequence[Any]
    ) -> DRound:
        return self.fn(round_number, history, payloads)


def surviving(n: int, history: DHistory) -> frozenset[ProcessId]:
    """Processes never suspected so far — the "certainly alive" set."""
    return frozenset(range(n)) - cumulative_suspected(history)
