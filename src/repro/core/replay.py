"""Record/replay of RRFD executions.

Determinism is a design invariant: an execution is fully determined by
(protocol, inputs, suspicion history, extras).  This module closes the
loop — take a recorded :class:`~repro.core.types.ExecutionTrace`, rebuild
an adversary that replays its suspicions, and re-run any protocol against
it.  Uses:

- regression: counterexamples found by exhaustive search or fuzzing become
  replayable artifacts (`ScriptedAdversary` from a trace);
- differential testing: run *two* protocols against the same suspicion
  history and compare (e.g. FloodMin vs FloodSet under one crash pattern);
- audit: verify a trace is internally consistent (the views really follow
  from the suspicions and payloads).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.adversary import ScriptedAdversary
from repro.core.algorithm import Protocol
from repro.core.executor import run_protocol
from repro.core.types import ExecutionTrace

__all__ = ["adversary_from_trace", "replay", "verify_trace_consistency"]


def adversary_from_trace(trace: ExecutionTrace) -> ScriptedAdversary:
    """An adversary that replays ``trace``'s suspicion history exactly.

    Note: "extras" (messages delivered from suspected senders) are replayed
    implicitly — the scripted adversary reproduces only the suspicions, and
    replaying a trace produced with ``overlap_prob > 0`` will deliver
    strictly less.  Traces from the default (no-overlap) adversaries replay
    bit-exactly.
    """
    return ScriptedAdversary(trace.n, list(trace.d_history))


def replay(
    trace: ExecutionTrace,
    protocol: Protocol,
    *,
    inputs: Sequence[Any] | None = None,
    max_rounds: int | None = None,
) -> ExecutionTrace:
    """Re-run ``protocol`` against ``trace``'s suspicion history.

    Defaults to the original inputs and round count; pass different
    ``inputs`` (or a different protocol) for differential experiments.
    """
    return run_protocol(
        protocol,
        tuple(inputs) if inputs is not None else trace.inputs,
        adversary_from_trace(trace),
        max_rounds=max_rounds if max_rounds is not None else max(trace.num_rounds, 1),
    )


def verify_trace_consistency(trace: ExecutionTrace) -> None:
    """Assert the trace's views follow from its payloads and suspicions.

    Checks, for every round and process: the view's suspected set matches
    the recorded suspicion row; every delivered message carries the
    sender's recorded payload; and coverage ``heard ∪ suspected = S`` holds
    (the RoundView constructor enforces the last — re-checked here for
    traces built by hand or deserialised).
    """
    everyone = frozenset(range(trace.n))
    for record in trace.rounds:
        suspicions = record.suspicions
        payloads = record.payloads
        for pid, view in enumerate(record.views):
            if view.pid != pid:
                raise AssertionError(
                    f"round {record.round}: view at slot {pid} claims pid {view.pid}"
                )
            recorded = suspicions[pid]
            # Executor-built records share the view's own set objects, so
            # the identity probe short-circuits the element-wise compare.
            if view.suspected is not recorded and view.suspected != recorded:
                raise AssertionError(
                    f"round {record.round}, p{pid}: view suspicions "
                    f"{sorted(view.suspected)} ≠ recorded "
                    f"{sorted(recorded)}"
                )
            if view.messages.keys() | view.suspected != everyone:
                raise AssertionError(
                    f"round {record.round}, p{pid}: coverage violated"
                )
            for sender, payload in view.messages.items():
                if payload != payloads[sender]:
                    raise AssertionError(
                        f"round {record.round}, p{pid}: message from {sender} "
                        "does not match the sender's recorded payload"
                    )
