"""Fundamental types of the RRFD model.

An RRFD system has a fixed set of processes ``S = {0, ..., n-1}``.  The
computation evolves in rounds ``r = 1, 2, ...``.  In each round every process
emits a message; the round-by-round fault detector (RRFD) then hands each
process ``i`` a :class:`RoundView`: the messages it received plus the set
``D(i, r)`` of processes it is told not to wait for ("suspected" for this
round).  The system guarantee is ``S(i,r) ∪ D(i,r) = S`` — every process is
either heard from or suspected, so no process ever blocks.

Suspicion is *per round* and unreliable: a process may be suspected by some
and heard by others, suspected in one round and heard in the next, and may
even appear in its own ``D(i, r)`` (meaning: "you were late to this round").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Mapping

from repro.util.bitset import domain as _bitset_domain

__all__ = [
    "ProcessId",
    "Round",
    "DRound",
    "DHistory",
    "PackedDRound",
    "PackedDHistory",
    "pack_round",
    "unpack_round",
    "pack_history",
    "unpack_history",
    "RoundView",
    "ExecutionRound",
    "ExecutionTrace",
    "RRFDError",
    "GuaranteeViolation",
    "PredicateViolation",
]

ProcessId = int
Round = int

# One round of suspicions: D[i] is the set process i is told is faulty.
DRound = tuple[frozenset[ProcessId], ...]
# Suspicions across rounds: history[r-1] is the DRound of round r.
DHistory = tuple[DRound, ...]

# Canonical packed encoding of the same objects (see repro.util.bitset):
# a DRound as one int of n*n bits — bit i*n + j set ⇔ j ∈ D(i) — and a
# DHistory as a tuple of such ints.  The bridge below is lossless; packing
# and unpacking round-trip exactly, and unpacked rounds are interned per n
# so repeated unpacking returns identical objects.
PackedDRound = int
PackedDHistory = tuple[int, ...]


def pack_round(d_round: DRound, n: int | None = None) -> PackedDRound:
    """Pack a ``DRound`` into its canonical ``n*n``-bit int encoding."""
    return _bitset_domain(len(d_round) if n is None else n).pack_round(d_round)


def unpack_round(rint: PackedDRound, n: int) -> DRound:
    """Unpack a packed round int back into an interned ``DRound``."""
    return _bitset_domain(n).unpack_round(rint)


def pack_history(history: DHistory, n: int) -> PackedDHistory:
    """Pack a ``DHistory`` into a tuple of packed round ints."""
    return _bitset_domain(n).pack_history(history)


def unpack_history(packed: PackedDHistory, n: int) -> DHistory:
    """Unpack packed round ints back into an interned ``DHistory``."""
    return _bitset_domain(n).unpack_history(packed)


class RRFDError(Exception):
    """Base class for all errors raised by the RRFD framework."""


class GuaranteeViolation(RRFDError):
    """The basic RRFD guarantee ``S(i,r) ∪ D(i,r) = S`` was violated."""


class PredicateViolation(RRFDError):
    """A round of suspicions violated the model predicate in force."""


@dataclass(frozen=True)
class RoundView:
    """What process ``pid`` sees at the end of round ``round``.

    Attributes:
        pid: the observing process.
        round: the round number (1-based).
        messages: mapping from sender id to the payload received.  Senders in
            ``suspected`` may still appear here — the detector is unreliable
            and may deliver a message *and* flag its sender.
        suspected: the set ``D(pid, round)``.
        n: total number of processes (``|S|``).
    """

    pid: ProcessId
    round: Round
    messages: Mapping[ProcessId, Any]
    suspected: frozenset[ProcessId]
    n: int

    def __post_init__(self) -> None:
        everyone = frozenset(range(self.n))
        covered = frozenset(self.messages) | self.suspected
        if covered != everyone:
            missing = sorted(everyone - covered)
            raise GuaranteeViolation(
                f"round {self.round}, process {self.pid}: processes {missing} "
                "were neither heard from nor suspected (S(i,r) ∪ D(i,r) ≠ S)"
            )

    @classmethod
    def trusted(
        cls,
        pid: ProcessId,
        round: Round,
        messages: Mapping[ProcessId, Any],
        suspected: frozenset[ProcessId],
        n: int,
    ) -> "RoundView":
        """Construct without the guarantee check.

        For callers that establish ``S(i,r) ∪ D(i,r) = S`` *by
        construction* — the round executor delivers exactly
        ``(S − D) ∪ extras``, so the union covers ``S`` identically —
        skipping the per-view set algebra of ``__post_init__`` on the
        model checker's hot path.  Hand-built views should keep using the
        normal constructor, which validates.
        """
        view = object.__new__(cls)
        view.__dict__.update(
            pid=pid, round=round, messages=messages, suspected=suspected, n=n
        )
        return view

    @property
    def heard(self) -> frozenset[ProcessId]:
        """The set ``S(pid, round)`` of processes whose message arrived."""
        return frozenset(self.messages)

    @property
    def silent(self) -> frozenset[ProcessId]:
        """Suspected processes whose message did *not* arrive."""
        return self.suspected - self.heard

    def value_from(self, sender: ProcessId) -> Any:
        """Payload received from ``sender``; raises ``KeyError`` if silent."""
        return self.messages[sender]


@dataclass(frozen=True)
class ExecutionRound:
    """A complete record of one executed round: payloads, views, suspicions."""

    round: Round
    payloads: tuple[Any, ...]
    views: tuple[RoundView, ...]

    @cached_property
    def suspicions(self) -> DRound:
        # Cached: d_history is reassembled per engine step and per invariant
        # check, and the record is frozen, so the tuple never goes stale.
        return tuple(view.suspected for view in self.views)


@dataclass
class ExecutionTrace:
    """Record of an entire RRFD execution, suitable for replay and audit.

    ``decisions[i]`` is process ``i``'s output (``None`` until it decides).
    ``rounds`` accumulates per-round records in order.
    """

    n: int
    inputs: tuple[Any, ...]
    rounds: list[ExecutionRound] = field(default_factory=list)
    decisions: list[Any] = field(default_factory=list)
    decided_at: list[Round | None] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.decisions:
            self.decisions = [None] * self.n
        if not self.decided_at:
            self.decided_at = [None] * self.n

    @property
    def d_history(self) -> DHistory:
        """The suspicion history ``{D(i,r)}`` of this execution."""
        return tuple(record.suspicions for record in self.rounds)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def all_decided(self) -> bool:
        return all(value is not None for value in self.decisions)

    @property
    def decided_values(self) -> frozenset[Any]:
        """Distinct decided values (ignoring undecided processes)."""
        return frozenset(v for v in self.decisions if v is not None)

    def record_decision(self, pid: ProcessId, value: Any, at_round: Round) -> None:
        if self.decisions[pid] is None:
            self.decisions[pid] = value
            self.decided_at[pid] = at_round
