"""The submodel relation between RRFD systems (paper, Section 2).

Let ``P_A`` and ``P_B`` define RRFD systems over the same process set.  Then
*A is a submodel of B* iff ``P_A ⇒ P_B``: every suspicion history A allows, B
also allows.  A submodel trivially implements its supermodel; the converse
fails (implementation is semantic, submodel-hood is syntactic — e.g. the
mixed-resilience model *B* of item 3 implements async MP without being its
submodel).

This module decides implication two ways:

- :func:`implies_exhaustive` — enumerate every suspicion history of a given
  length for small ``n`` with depth-first pruning (all catalog predicates are
  prefix-closed, so a disallowed prefix never extends to an allowed history);
  returns a proof (``None`` counterexample) or a concrete counterexample.
- :func:`refute_by_sampling` — sample histories of A via its constructive
  sampler and look for one B rejects.  Can only *refute*, never prove.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.predicate import Predicate
from repro.core.types import DHistory, DRound
from repro.util.sets import all_subset_families

__all__ = [
    "SubmodelResult",
    "implies_exhaustive",
    "refute_by_sampling",
    "check_submodel",
]


@dataclass(frozen=True)
class SubmodelResult:
    """Outcome of a submodel check ``P_A ⇒ P_B``.

    ``holds`` is ``True``/``False`` for a definite answer, ``None`` when only
    sampling ran and found no counterexample (implication not refuted).
    """

    a: str
    b: str
    holds: bool | None
    rounds: int
    counterexample: DHistory | None = None
    histories_checked: int = 0

    def __str__(self) -> str:
        if self.holds is True:
            verdict = "SUBMODEL"
        elif self.holds is False:
            verdict = "NOT a submodel"
        else:
            verdict = "not refuted (sampled)"
        return (
            f"{self.a} ⇒ {self.b} over {self.rounds} round(s): {verdict} "
            f"({self.histories_checked} histories)"
        )


def implies_exhaustive(
    pa: Predicate,
    pb: Predicate,
    *,
    rounds: int = 1,
    max_d_size: int | None = None,
) -> SubmodelResult:
    """Exhaustively decide ``P_A ⇒ P_B`` over histories of ``rounds`` rounds.

    ``max_d_size`` prunes the per-process suspicion sets enumerated; pass the
    model's miss bound when A has one (any history violating the bound is
    rejected by A anyway, so pruning is sound as long as the bound is not
    *smaller* than A's).  The search space is ``(Σ subsets)^(n·rounds)`` —
    keep ``n ≤ 4`` unbounded, or ``n ≤ 6`` with ``max_d_size ≤ 1``.
    """
    if pa.n != pb.n:
        raise ValueError(f"predicates disagree on n: {pa.n} vs {pb.n}")
    checked = 0
    counterexample: DHistory | None = None

    def extend(history: DHistory) -> DHistory | None:
        nonlocal checked
        if len(history) == rounds:
            checked += 1
            if not pb.allows(history):
                return history
            return None
        for d_round in all_subset_families(pa.n, max_size=max_d_size):
            candidate = history + (d_round,)
            if not pa.allows(candidate):
                continue
            found = extend(candidate)
            if found is not None:
                return found
        return None

    counterexample = extend(())
    return SubmodelResult(
        a=pa.describe(),
        b=pb.describe(),
        holds=counterexample is None,
        rounds=rounds,
        counterexample=counterexample,
        histories_checked=checked,
    )


def refute_by_sampling(
    pa: Predicate,
    pb: Predicate,
    *,
    rounds: int = 3,
    samples: int = 500,
    rng: random.Random | None = None,
) -> SubmodelResult:
    """Sample A-histories looking for one that violates B.

    A found counterexample proves ``P_A ⇏ P_B``; exhausting the samples
    yields ``holds=None`` ("not refuted").
    """
    if pa.n != pb.n:
        raise ValueError(f"predicates disagree on n: {pa.n} vs {pb.n}")
    rng = rng or random.Random(0)
    for trial in range(samples):
        history: DHistory = ()
        for _ in range(rounds):
            d_round: DRound = pa.sample_round(rng, history)
            history = history + (d_round,)
        assert pa.allows(history), (
            f"{pa.describe()} sampler produced a history it rejects: {history!r}"
        )
        if not pb.allows(history):
            return SubmodelResult(
                a=pa.describe(),
                b=pb.describe(),
                holds=False,
                rounds=rounds,
                counterexample=history,
                histories_checked=trial + 1,
            )
    return SubmodelResult(
        a=pa.describe(),
        b=pb.describe(),
        holds=None,
        rounds=rounds,
        counterexample=None,
        histories_checked=samples,
    )


def check_submodel(
    pa: Predicate,
    pb: Predicate,
    *,
    rounds: int = 2,
    max_d_size: int | None = None,
    samples: int = 500,
    rng: random.Random | None = None,
) -> SubmodelResult:
    """Decide exhaustively when feasible, otherwise fall back to sampling.

    Feasibility heuristic: exhaustive enumeration is attempted when the
    per-round space ``(#subsets)^n`` stays under ~10^6 across rounds.
    """
    from repro.util.sets import powerset_size

    per_round = powerset_size(pa.n, max_d_size) ** pa.n
    if per_round**rounds <= 1_000_000:
        return implies_exhaustive(pa, pb, rounds=rounds, max_d_size=max_d_size)
    return refute_by_sampling(pa, pb, rounds=rounds, samples=samples, rng=rng)
