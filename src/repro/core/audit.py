"""Execution auditing: check the RRFD invariants on *measured* runs.

The substrates are supposed to make the paper's guarantees emerge from
message-level behaviour; this module checks that they actually did, on every
run, instead of assuming it:

- the RRFD guarantee ``S(i,r) ∪ D(i,r) = S`` (every process heard or
  suspected, eq. before (1));
- the async message-passing predicate ``|D(i,r)| ≤ f`` (eq. (3));
- communication closure (Elrad–Francez, via Damian et al.): a round-``r``
  view contains only payloads the sender emitted *for round r* — no message
  crosses a round boundary;
- round ordering: each process's views are rounds ``1, 2, ...`` in order.

The stall watchdog turns the overlay's failure mode — silent quiescence
without decisions, exactly what the model predicts when more than ``f``
processes fall silent — into a structured :class:`StallReport`: who is
blocked, in which round, holding how many messages, waiting for whom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.core.types import RoundView, RRFDError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.substrates.messaging.network import AsyncNetwork
    from repro.substrates.messaging.rounds import RoundOverlayNode

__all__ = [
    "AuditViolation",
    "StalledProcess",
    "StallReport",
    "StallDetected",
    "AuditReport",
    "ExecutionAuditor",
]


@dataclass(frozen=True)
class AuditViolation:
    """One broken invariant, attributed to a process and round."""

    kind: str  # "guarantee" | "suspicion-bound" | "communication-closure" | "round-order"
    pid: int
    round: int
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] p{self.pid} r{self.round}: {self.detail}"


@dataclass(frozen=True)
class StalledProcess:
    """One blocked process: stuck in ``round`` with ``have < need`` messages."""

    pid: int
    round: int
    have: int
    need: int
    waiting_for: frozenset[int]

    def __str__(self) -> str:
        waiting = ",".join(f"p{j}" for j in sorted(self.waiting_for))
        return (
            f"p{self.pid} blocked in round {self.round}: "
            f"{self.have}/{self.need} messages, waiting for {{{waiting}}}"
        )


@dataclass
class StallReport:
    """Quiescence without completion, decomposed per process."""

    blocked: tuple[StalledProcess, ...]
    completed: frozenset[int]
    crashed: frozenset[int]

    @property
    def stalled(self) -> bool:
        return bool(self.blocked)

    def __str__(self) -> str:
        if not self.blocked:
            return "no stall: every live process completed"
        lines = [
            f"STALL: {len(self.blocked)} blocked, "
            f"{len(self.completed)} completed, {len(self.crashed)} crashed"
        ]
        lines.extend(f"  {p}" for p in self.blocked)
        return "\n".join(lines)


class StallDetected(RRFDError):
    """The execution went quiescent with live, undecided processes."""

    def __init__(self, report: StallReport) -> None:
        super().__init__(str(report))
        self.report = report


@dataclass
class AuditReport:
    """Outcome of auditing one execution."""

    violations: tuple[AuditViolation, ...] = ()
    stall: StallReport | None = None
    views_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations and (self.stall is None or not self.stall.stalled)

    def summary(self) -> str:
        stall = "stalled" if self.stall and self.stall.stalled else "no stall"
        verdict = "OK" if self.ok else ("VIOLATIONS" if self.violations else "STALLED")
        return (
            f"audit {verdict}: {self.views_checked} views, "
            f"{len(self.violations)} violations, {stall}"
        )


class ExecutionAuditor:
    """Checks RRFD invariants on overlay executions and heartbeat runs.

    One auditor instance is parameterised by the system (``n``, ``f``) and
    can audit any number of executions of it.
    """

    def __init__(self, n: int, f: int) -> None:
        if not 0 <= f < n:
            raise ValueError(f"need 0 ≤ f < n, got f={f}, n={n}")
        self.n = n
        self.f = f
        self._everyone = frozenset(range(n))

    # ----------------------------------------------------------- view checks

    def check_views(
        self,
        pid: int,
        views: Iterable[RoundView],
        emissions_of: "list[RoundOverlayNode] | None" = None,
        *,
        late_arrivals: Iterable[tuple[int, int, int]] | None = None,
    ) -> list[AuditViolation]:
        """Invariant-check one process's view sequence.

        The per-view closure check below can only see payloads that made it
        *into* a view; a round-``r`` copy delivered after the receiver
        already advanced past ``r`` (a late duplicate from chaos dup+jitter,
        or a straggling retransmission) is discarded before any view records
        it and is therefore invisible here.  Pass the receiver's attributed
        ``late_arrivals`` — ``(src, message round, round the receiver was
        in)`` triples, recorded by the overlay/service reception paths — to
        have each such boundary crossing reported as a
        ``communication-closure`` violation.  The overlay *tolerates* these
        by construction (discarding them is the Damian et al. rewriting), so
        the strict check is opt-in: it certifies that the underlying async
        execution was communication-closed as delivered, not merely that the
        views were closed after filtering.
        """
        everyone = self._everyone
        violations: list[AuditViolation] = []
        if late_arrivals is not None:
            for src, round_number, at_round in late_arrivals:
                violations.append(AuditViolation(
                    "communication-closure", pid, round_number,
                    f"round-{round_number} payload from p{src} delivered "
                    f"after p{pid} advanced to round {at_round} (late "
                    "duplicate crossed the round boundary and was "
                    "discarded)",
                ))
        for index, view in enumerate(views, start=1):
            if view.round != index:
                violations.append(AuditViolation(
                    "round-order", pid, view.round,
                    f"view #{index} is for round {view.round}",
                ))
            covered = view.messages.keys() | view.suspected
            if covered != everyone:
                missing = sorted(everyone - covered)
                violations.append(AuditViolation(
                    "guarantee", pid, view.round,
                    f"processes {missing} neither heard nor suspected "
                    "(S(i,r) ∪ D(i,r) ≠ S)",
                ))
            if len(view.suspected) > self.f:
                violations.append(AuditViolation(
                    "suspicion-bound", pid, view.round,
                    f"|D(i,r)| = {len(view.suspected)} > f = {self.f}",
                ))
            if emissions_of is not None:
                for src, data in sorted(view.messages.items()):
                    emitted = emissions_of[src].emissions
                    if view.round not in emitted:
                        violations.append(AuditViolation(
                            "communication-closure", pid, view.round,
                            f"message from p{src} for a round it never emitted",
                        ))
                    elif emitted[view.round] != data:
                        violations.append(AuditViolation(
                            "communication-closure", pid, view.round,
                            f"payload from p{src} differs from its round-"
                            f"{view.round} emission (cross-round leak?)",
                        ))
        return violations

    # -------------------------------------------------------------- overlays

    def audit_overlay(
        self,
        nodes: "list[RoundOverlayNode]",
        network: "AsyncNetwork",
        *,
        strict_closure: bool = False,
    ) -> AuditReport:
        """Audit a quiesced round-overlay execution, stall watchdog included.

        Must be called after the network ran to quiescence (a truncated run
        should raise :class:`~repro.substrates.events.BudgetExhausted`
        instead of being audited — partial executions prove nothing).

        ``strict_closure`` additionally reports every discarded late
        delivery as a ``communication-closure`` violation (see
        :meth:`check_views`); off by default because the overlay discards
        such messages *by design* to stay round-closed under chaos.
        """
        violations: list[AuditViolation] = []
        views_checked = 0
        for node in nodes:
            violations.extend(self.check_views(
                node.pid, node.views, nodes,
                late_arrivals=(
                    getattr(node, "late_arrivals", ()) if strict_closure
                    else None
                ),
            ))
            views_checked += len(node.views)
        return AuditReport(
            violations=tuple(violations),
            stall=self.detect_stall(nodes, network),
            views_checked=views_checked,
        )

    def detect_stall(
        self,
        nodes: "list[RoundOverlayNode]",
        network: "AsyncNetwork",
    ) -> StallReport:
        """The watchdog: any live process that has not halted is blocked.

        At quiescence no further delivery can unblock anyone, so a live
        node with ``halted == False`` is stuck in ``current_round`` waiting
        for senders it has not heard from.
        """
        everyone = frozenset(range(self.n))
        crashed = everyone - network.correct
        blocked: list[StalledProcess] = []
        completed: set[int] = set()
        for node in nodes:
            if node.pid in crashed:
                continue
            if node.halted:
                completed.add(node.pid)
                continue
            have = dict(node.buffers.get(node.current_round, {}))
            blocked.append(StalledProcess(
                pid=node.pid,
                round=node.current_round,
                have=len(have),
                need=self.n - self.f,
                waiting_for=everyone - frozenset(have),
            ))
        return StallReport(
            blocked=tuple(blocked),
            completed=frozenset(completed),
            crashed=crashed,
        )

    # -------------------------------------------------------------- heartbeat

    def audit_heartbeat(self, system) -> AuditReport:
        """Audit a heartbeat run: strong completeness at the horizon.

        Every crashed process must be suspected by every correct process by
        the time the run stops (chaos can only *help* suspicion — dropped
        heartbeats look like silence).  Accuracy is eventual and therefore
        not a per-run invariant; the quality benchmarks measure it instead.
        """
        violations: list[AuditViolation] = []
        correct = system.network.correct
        crashed = frozenset(range(system.n)) - correct
        for pid in sorted(correct):
            missing = crashed - system.nodes[pid].suspected
            for dead in sorted(missing):
                violations.append(AuditViolation(
                    "completeness", pid, 0,
                    f"crashed p{dead} not suspected by p{pid} at horizon",
                ))
        return AuditReport(violations=tuple(violations))
