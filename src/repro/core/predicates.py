"""The catalog of RRFD predicates from the paper (Sections 2, 3 and 5).

Each class is one model of the paper, numbered as in Section 2:

========================  =====================================================
:class:`SendOmissionSync`  item 1, eq. (1) — synchronous, ≤ f send-omission
:class:`CrashSync`         item 2, eq. (1)+(2) — synchronous, ≤ f crashes
:class:`AsyncMessagePassing` item 3, eq. (3) — asynchronous MP, ≤ f crashes
:class:`MixedResilience`   item 3, model *B* — t processes may miss t others
:class:`SharedMemorySWMR`  item 4, eq. (3)+(4) — async SWMR shared memory
:class:`SharedMemoryAntisymmetric` item 4 (alternative predicate)
:class:`AtomicSnapshot`    item 5 — async atomic-snapshot shared memory
:class:`EventuallyStrong`  item 6 — ◇S-style detector, |⋃⋃D| < n
:class:`KSetDetector`      Section 3, Thm 3.1 — |⋃D − ⋂D| < k per round
:class:`SemiSyncEquality`  Section 5, eq. (5) — all D(i,r) equal
========================  =====================================================

A modelling note on the synchronous predicates.  The paper states eq. (1) as
``∀ p_i, r: p_i ∉ D(i, r)`` and eq. (2) as ``⋃_i D(i,r) ⊆ D(k, r+1)``.  Taken
literally over *all* processes, the conjunction is unsatisfiable the moment
anyone is suspected (the suspected process would have to suspect itself,
violating eq. (1)).  The intent — standard in the synchronous literature — is
that the clauses quantify over processes that have not themselves failed:
a crashed process takes no further steps, so its own view is irrelevant.  We
therefore qualify both clauses by "alive", where a process is alive at round
``r`` if it was never suspected in rounds ``< r``.  This keeps the paper's
explicit claim that crash is a submodel of send-omission true, and is the
reading used by every construction in Sections 4–5.
"""

from __future__ import annotations

import random

from repro.core.predicate import (
    FastPackedPredicate,
    PackedPredicate,
    Predicate,
    cumulative_suspected,
    round_intersection,
    round_union,
)
from repro.core.types import DHistory, DRound, ProcessId
from repro.util.bitset import iter_bits
from repro.util.sets import random_subset, random_subset_of_size

__all__ = [
    "SendOmissionSync",
    "CrashSync",
    "AsyncMessagePassing",
    "MixedResilience",
    "SharedMemorySWMR",
    "SharedMemoryAntisymmetric",
    "AtomicSnapshot",
    "EventuallyStrong",
    "KSetDetector",
    "SemiSyncEquality",
]


class SendOmissionSync(Predicate):
    """Synchronous message passing with at most ``f`` send-omission faults.

    Paper eq. (1): alive processes never suspect themselves, and the
    cumulative set of suspected processes over the whole run has size ≤ f::

        ∀ p_i alive, r:  p_i ∉ D(i, r)    and    |⋃_{r>0} ⋃_i D(i, r)| ≤ f
    """

    is_symmetric = True

    def __init__(self, n: int, f: int) -> None:
        super().__init__(n)
        if not 0 <= f < n:
            raise ValueError(f"need 0 ≤ f < n, got f={f}, n={n}")
        self.f = f

    def _allows(self, history: DHistory) -> bool:
        suspected_before: frozenset[ProcessId] = frozenset()
        for d_round in history:
            for pid, suspected in enumerate(d_round):
                if pid in suspected and pid not in suspected_before:
                    return False
            suspected_before |= round_union(d_round)
            if len(suspected_before) > self.f:
                return False
        return True

    def extension_state(self, history: DHistory) -> object:
        # Whether a new round is allowed depends only on who was already
        # suspected (self-suspicion clause + remaining fault budget).
        return cumulative_suspected(history)

    def sample_round(self, rng: random.Random, history: DHistory) -> DRound:
        previously = set(cumulative_suspected(history))
        faulty_pool = set(previously)
        budget = self.f - len(faulty_pool)
        # Occasionally spend some remaining budget on fresh faults.
        if budget > 0 and rng.random() < 0.5:
            fresh = random_subset(
                self.everyone - faulty_pool, rng, max_size=budget
            )
            faulty_pool |= fresh
        # Self-suspicion is only legal for processes already suspected in an
        # earlier round; excluding self everywhere keeps sampling simple.
        return tuple(
            random_subset(faulty_pool, rng, exclude=(pid,))
            for pid in range(self.n)
        )

    def describe(self) -> str:
        return f"SendOmissionSync(f={self.f}): pᵢ∉D(i,r) ∧ |⋃⋃D| ≤ {self.f}"

    def packed(self) -> PackedPredicate:
        if type(self) is not SendOmissionSync:
            return Predicate.packed(self)
        return _PackedSendOmission(self)


class CrashSync(SendOmissionSync):
    """Synchronous message passing with at most ``f`` crash faults.

    Adds eq. (2) to :class:`SendOmissionSync`: a process suspected by anyone
    at round ``r`` is suspected by every alive process from round ``r+1`` on::

        ∀ r > 0, ∀ p_k alive:  ⋃_i D(i, r) ⊆ D(k, r+1)

    The paper makes the crash model *explicitly* a submodel of the
    send-omission model; :mod:`repro.core.submodel` verifies that.
    """

    def _allows(self, history: DHistory) -> bool:
        if not super()._allows(history):
            return False
        suspected_through: list[frozenset[ProcessId]] = []
        acc: frozenset[ProcessId] = frozenset()
        for d_round in history:
            acc |= round_union(d_round)
            suspected_through.append(acc)
        for r in range(1, len(history)):
            required = round_union(history[r - 1])
            alive = self.everyone - suspected_through[r - 1]
            for pid in alive:
                if not required <= history[r][pid]:
                    return False
        return True

    def extension_state(self, history: DHistory) -> object:
        # Eq. (2) on the new round needs the previous round's union (what
        # alive processes must now suspect); the inherited clauses need the
        # cumulative set.
        return (
            cumulative_suspected(history),
            round_union(history[-1]) if history else None,
        )

    def sample_round(self, rng: random.Random, history: DHistory) -> DRound:
        crashed = set(cumulative_suspected(history))
        required = round_union(history[-1]) if history else frozenset()
        budget = self.f - len(crashed)
        newly_crashed: set[ProcessId] = set()
        if budget > 0 and rng.random() < 0.5:
            newly_crashed = set(
                random_subset(self.everyone - crashed, rng, max_size=budget)
            )
        suspicions: list[frozenset[ProcessId]] = []
        for pid in range(self.n):
            if pid in crashed:
                # A crashed process's view is unconstrained; keep it simple
                # and have it see everything it must.
                suspicions.append(frozenset(required | newly_crashed))
                continue
            # Alive processes must suspect `required`; they may additionally
            # catch some of this round's new crashes.
            extra = random_subset(newly_crashed, rng) if newly_crashed else frozenset()
            own = (required | extra) - {pid}
            suspicions.append(frozenset(own))
        return tuple(suspicions)

    def describe(self) -> str:
        return (
            f"CrashSync(f={self.f}): SendOmissionSync({self.f}) ∧ "
            "⋃ᵢD(i,r) ⊆ D(k,r+1)"
        )

    def packed(self) -> PackedPredicate:
        if type(self) is not CrashSync:
            return Predicate.packed(self)
        return _PackedCrashSync(self)


class AsyncMessagePassing(Predicate):
    """Asynchronous message passing with ≤ f crash faults (item 3, eq. (3)).

    Per round, every process misses at most ``f`` others: ``|D(i,r)| ≤ f``.
    This is the round-based ("iterated") view of an asynchronous system in
    which a process waits for ``n − f`` round-``r`` messages, buffering early
    and discarding late ones.
    """

    is_symmetric = True

    def __init__(self, n: int, f: int) -> None:
        super().__init__(n)
        if not 0 <= f < n:
            raise ValueError(f"need 0 ≤ f < n, got f={f}, n={n}")
        self.f = f

    def _allows(self, history: DHistory) -> bool:
        for d_round in history:
            if any(len(suspected) > self.f for suspected in d_round):
                return False
        return True

    def allows_extension(self, history: DHistory, new_round: DRound) -> bool:
        return self.allows((new_round,))

    def extension_state(self, history: DHistory) -> object:
        # Purely per-round: extensions are history-independent.  Inherited
        # by the shared-memory refinements, whose extra clauses are also
        # per-round.
        return ()

    def sample_round(self, rng: random.Random, history: DHistory) -> DRound:
        return tuple(
            random_subset(self.everyone, rng, max_size=self.f)
            for _ in range(self.n)
        )

    def describe(self) -> str:
        return f"AsyncMessagePassing(f={self.f}): |D(i,r)| ≤ {self.f}"

    def packed(self) -> PackedPredicate:
        if type(self) is not AsyncMessagePassing:
            return Predicate.packed(self)
        return _PackedAsyncMessagePassing(self)


class MixedResilience(Predicate):
    """The paper's model *B* (item 3): non-uniform miss bounds.

    There is a set ``Q`` of at most ``t`` processes such that every process
    outside ``Q`` misses at most ``f`` others per round, while processes in
    ``Q`` may miss up to ``t``.  With ``f < t`` and ``2t < n`` this is a
    strictly weaker model than :class:`AsyncMessagePassing(f)` — yet two of
    its rounds implement one round of the stronger model
    (:mod:`repro.simulations.relay`).

    ``Q`` is existentially quantified over the *run*: a history is allowed if
    some single ``Q`` works for all its rounds.
    """

    is_symmetric = True

    def __init__(self, n: int, t: int, f: int) -> None:
        super().__init__(n)
        if not 0 <= f <= t < n:
            raise ValueError(f"need 0 ≤ f ≤ t < n, got t={t}, f={f}, n={n}")
        self.t = t
        self.f = f

    def _allows(self, history: DHistory) -> bool:
        worst = [0] * self.n
        for d_round in history:
            for pid, suspected in enumerate(d_round):
                worst[pid] = max(worst[pid], len(suspected))
        if any(w > self.t for w in worst):
            return False
        heavy = sum(1 for w in worst if w > self.f)
        return heavy <= self.t

    def extension_state(self, history: DHistory) -> object:
        # Admissible extensions depend only on each process's worst |D| so
        # far (pid identity matters: Q must stay consistent per process).
        worst = [0] * self.n
        for d_round in history:
            for pid, suspected in enumerate(d_round):
                if len(suspected) > worst[pid]:
                    worst[pid] = len(suspected)
        return tuple(worst)

    def sample_round(self, rng: random.Random, history: DHistory) -> DRound:
        # Keep Q stable: derive it from which processes were already heavy.
        heavy = {
            pid
            for pid in range(self.n)
            if any(len(d_round[pid]) > self.f for d_round in history)
        }
        room = self.t - len(heavy)
        if room > 0 and rng.random() < 0.5:
            heavy |= set(
                random_subset(self.everyone - heavy, rng, max_size=room)
            )
        return tuple(
            random_subset(
                self.everyone, rng, max_size=self.t if pid in heavy else self.f
            )
            for pid in range(self.n)
        )

    def describe(self) -> str:
        return (
            f"MixedResilience(t={self.t}, f={self.f}): ∃Q,|Q|≤{self.t}: "
            f"|D(i,r)| ≤ {self.f} off Q, ≤ {self.t} on Q"
        )

    def packed(self) -> PackedPredicate:
        if type(self) is not MixedResilience:
            return Predicate.packed(self)
        return _PackedMixedResilience(self)


class SharedMemorySWMR(AsyncMessagePassing):
    """Asynchronous SWMR shared memory with ≤ f crashes (item 4, eq. (3)+(4)).

    Adds to eq. (3) the per-round guarantee that at least one process is
    suspected by *nobody*::

        ∀ r > 0:  |⋃_i D(i, r)| < n

    This is what distinguishes shared memory from message passing with
    ``2f ≥ n``: shared memory never "partitions" — the first writer of a
    round is read by everyone.
    """

    def _allows(self, history: DHistory) -> bool:
        if not super()._allows(history):
            return False
        return all(len(round_union(d_round)) < self.n for d_round in history)

    def allows_extension(self, history: DHistory, new_round: DRound) -> bool:
        return self.allows((new_round,))

    def sample_round(self, rng: random.Random, history: DHistory) -> DRound:
        heard_by_all = rng.randrange(self.n)
        return tuple(
            random_subset(
                self.everyone, rng, exclude=(heard_by_all,), max_size=self.f
            )
            for _ in range(self.n)
        )

    def describe(self) -> str:
        return (
            f"SharedMemorySWMR(f={self.f}): |D(i,r)| ≤ {self.f} ∧ |⋃ᵢD(i,r)| < n"
        )

    def packed(self) -> PackedPredicate:
        if type(self) is not SharedMemorySWMR:
            return Predicate.packed(self)
        return _PackedSharedMemorySWMR(self)


class SharedMemoryAntisymmetric(AsyncMessagePassing):
    """Item 4's alternative shared-memory clause: misses are antisymmetric.

    ``p_j ∈ D(i, r) ⇒ p_i ∉ D(j, r)`` — if I missed you, you did not miss
    me.  The paper notes this does *not* imply eq. (4) (a "does-not-know"
    cycle p₁→p₂→...→pₙ→p₁ is possible), but information flows backwards
    along any such cycle, so after at most ``n`` rounds some process is known
    to all; the paper conjectures two rounds suffice (experiment E8).
    """

    def _allows(self, history: DHistory) -> bool:
        if not super()._allows(history):
            return False
        for d_round in history:
            for i in range(self.n):
                for j in d_round[i]:
                    if j != i and i in d_round[j]:
                        return False
        return True

    def allows_extension(self, history: DHistory, new_round: DRound) -> bool:
        return self.allows((new_round,))

    def sample_round(self, rng: random.Random, history: DHistory) -> DRound:
        suspicions: list[set[ProcessId]] = [set() for _ in range(self.n)]
        # Consider ordered pairs in random order; add a miss i→j only when
        # it keeps antisymmetry and per-process budgets.
        pairs = [(i, j) for i in range(self.n) for j in range(self.n)]
        rng.shuffle(pairs)
        for i, j in pairs:
            if len(suspicions[i]) >= self.f:
                continue
            if i != j and i in suspicions[j]:
                continue
            if rng.random() < 0.3:
                suspicions[i].add(j)
        return tuple(frozenset(s) for s in suspicions)

    def describe(self) -> str:
        return (
            f"SharedMemoryAntisymmetric(f={self.f}): |D(i,r)| ≤ {self.f} ∧ "
            "(pⱼ∈D(i,r) ⇒ pᵢ∉D(j,r))"
        )

    def packed(self) -> PackedPredicate:
        if type(self) is not SharedMemoryAntisymmetric:
            return Predicate.packed(self)
        return _PackedAntisymmetric(self)


class AtomicSnapshot(AsyncMessagePassing):
    """Asynchronous atomic-snapshot shared memory, ≤ f crashes (item 5).

    Adds to eq. (3): processes never suspect themselves, and within a round
    the suspicion sets are totally ordered by inclusion::

        p_i ∉ D(i, r)    and    D(i,r) ⊆ D(j,r) ∨ D(j,r) ⊆ D(i,r)

    (This is the iterated-immediate-snapshot structure of Borowsky–Gafni:
    snapshots of a round can be linearized, so what one process misses is a
    subset of what a "later" process misses... and vice versa.)
    """

    def _allows(self, history: DHistory) -> bool:
        if not super()._allows(history):
            return False
        for d_round in history:
            for pid, suspected in enumerate(d_round):
                if pid in suspected:
                    return False
            ordered = sorted(d_round, key=len)
            for smaller, larger in zip(ordered, ordered[1:]):
                if not smaller <= larger:
                    return False
        return True

    def allows_extension(self, history: DHistory, new_round: DRound) -> bool:
        return self.allows((new_round,))

    def sample_round(self, rng: random.Random, history: DHistory) -> DRound:
        # Build a random chain ∅ = C_0 ⊆ C_1 ⊆ ... of misses with |C_max| ≤ f,
        # then assign each process a chain level it is *not* inside.
        chain: list[frozenset[ProcessId]] = [frozenset()]
        pool = list(self.everyone)
        rng.shuffle(pool)
        for pid in pool[: self.f]:
            if rng.random() < 0.5:
                chain.append(chain[-1] | {pid})
        suspicions: list[frozenset[ProcessId]] = []
        for pid in range(self.n):
            levels = [c for c in chain if pid not in c]
            suspicions.append(rng.choice(levels))
        return tuple(suspicions)

    def describe(self) -> str:
        return (
            f"AtomicSnapshot(f={self.f}): |D(i,r)| ≤ {self.f} ∧ pᵢ∉D(i,r) ∧ "
            "D-sets form a ⊆-chain per round"
        )

    def packed(self) -> PackedPredicate:
        if type(self) is not AtomicSnapshot:
            return Predicate.packed(self)
        return _PackedAtomicSnapshot(self)


class EventuallyStrong(Predicate):
    """The RRFD counterpart of the classic failure detector ◇S (item 6).

    Some process is never suspected by anyone::

        |⋃_{r>0} ⋃_i D(i, r)| < n

    The paper observes this is exactly the :class:`SendOmissionSync` predicate
    with ``f = n − 1`` minus the self-suspicion clause — a pure predicate
    manipulation reducing wait-free ◇S consensus to synchronous consensus.
    """

    is_symmetric = True

    def _allows(self, history: DHistory) -> bool:
        return len(cumulative_suspected(history)) < self.n

    def extension_state(self, history: DHistory) -> object:
        return cumulative_suspected(history)

    def sample_round(self, rng: random.Random, history: DHistory) -> DRound:
        already = cumulative_suspected(history)
        if len(already) < self.n - 1:
            # May still grow the suspected pool, but keep one process immune.
            immune_pool = sorted(self.everyone - already)
            immune = rng.choice(immune_pool)
        else:
            (immune,) = self.everyone - already
        return tuple(
            random_subset(self.everyone, rng, exclude=(immune,), max_size=self.n - 1)
            for _ in range(self.n)
        )

    def describe(self) -> str:
        return "EventuallyStrong: |⋃⋃D| < n (some process never suspected)"

    def packed(self) -> PackedPredicate:
        if type(self) is not EventuallyStrong:
            return Predicate.packed(self)
        return _PackedEventuallyStrong(self)


class KSetDetector(Predicate):
    """The detector of Theorem 3.1, capturing k-set agreement.

    Per round, fewer than ``k`` processes are suspected by *some* process but
    not by *all*::

        ∀ r > 0:  |⋃_i D(i, r) − ⋂_i D(i, r)| < k

    The bound limits the detector's per-round *disagreement*; for ``k = 1``
    the detectors at different processes must agree exactly (and one round of
    it solves consensus — Theorem 3.1's proof is
    :mod:`repro.protocols.kset`).
    """

    is_symmetric = True

    def __init__(self, n: int, k: int) -> None:
        super().__init__(n)
        if not 1 <= k <= n:
            raise ValueError(f"need 1 ≤ k ≤ n, got k={k}, n={n}")
        self.k = k

    def _allows(self, history: DHistory) -> bool:
        for d_round in history:
            disagreement = round_union(d_round) - round_intersection(d_round)
            if len(disagreement) >= self.k:
                return False
        return True

    def allows_extension(self, history: DHistory, new_round: DRound) -> bool:
        return self.allows((new_round,))

    def extension_state(self, history: DHistory) -> object:
        # Purely per-round (inherited by SemiSyncEquality).
        return ()

    def sample_round(self, rng: random.Random, history: DHistory) -> DRound:
        # A common core everyone suspects (never all of S), plus fewer than k
        # contested processes that only some suspect.
        core = random_subset(self.everyone, rng, max_size=self.n - 1)
        contested = random_subset_of_size(
            self.everyone - core, rng.randint(0, max(0, min(self.k - 1, self.n - 1 - len(core)))), rng
        )
        suspicions: list[frozenset[ProcessId]] = []
        for _ in range(self.n):
            extra = random_subset(contested, rng)
            suspicions.append(core | extra)
        return tuple(suspicions)

    def describe(self) -> str:
        return f"KSetDetector(k={self.k}): |⋃ᵢD(i,r) − ⋂ᵢD(i,r)| < {self.k}"

    def packed(self) -> PackedPredicate:
        if type(self) is not KSetDetector:
            return Predicate.packed(self)
        return _PackedKSetDetector(self)


class SemiSyncEquality(KSetDetector):
    """Equation (5): all processes get identical suspicions each round.

    ``∀ r, i, j: D(i, r) = D(j, r)`` — equivalently :class:`KSetDetector`
    with ``k = 1``.  Section 5 implements this detector in the semi-
    synchronous model of Dolev–Dwork–Stockmeyer with two steps per round,
    yielding a 2-step consensus algorithm.
    """

    def __init__(self, n: int) -> None:
        super().__init__(n, k=1)

    def sample_round(self, rng: random.Random, history: DHistory) -> DRound:
        common = random_subset(self.everyone, rng, max_size=self.n - 1)
        return tuple(common for _ in range(self.n))

    def describe(self) -> str:
        return "SemiSyncEquality: D(i,r) = D(j,r) for all i, j"

    def packed(self) -> PackedPredicate:
        # Same clauses as KSetDetector with k=1 (only sampling differs).
        if type(self) is not SemiSyncEquality:
            return Predicate.packed(self)
        return _PackedKSetDetector(self)


# ---------------------------------------------------------------------------
# Packed (integer-bitmask) kernels — the fast-path twins of the catalog.
#
# Each class below restates its predicate's clauses as bit operations over
# per-process masks, in the FastPackedPredicate frame: a folded `state`
# (the packed extension_state), precomputed `|D| ≤ bound` mask tables, a
# `push` prefix filter that lets backtracking enumeration prune the
# (2^n)^n family space, and an exact `accept`.  The frozenset classes
# above remain the reference semantics; tests/core/test_packed_predicates
# holds the two paths equal clause by clause.


class _PackedSendOmission(FastPackedPredicate):
    """pᵢ∉D(i,r) for alive pᵢ ∧ |⋃⋃D| ≤ f, over a cumulative mask state."""

    def __init__(self, predicate: SendOmissionSync) -> None:
        super().__init__(predicate)
        self.f = predicate.f

    def initial_state(self) -> int:
        return 0

    def advance(self, state: int, rint: int) -> int:
        return state | self.domain.round_union(rint)

    def size_bound(self, state: int) -> int:
        # Every suspicion joins the cumulative set, which is capped at f.
        return self.f

    def mask_ok(self, state: int, pid: int, mask: int) -> bool:
        if mask.bit_count() > self.f:
            return False
        # Self-suspicion is only legal once pid is already suspected.
        return not ((mask >> pid) & 1 and not (state >> pid) & 1)

    def begin(self, state: int) -> int:
        return 0  # union of the masks placed so far

    def push(self, state, aux, pid, mask, masks):
        if (mask >> pid) & 1 and not (state >> pid) & 1:
            return None
        union = aux | mask
        if (state | union).bit_count() > self.f:
            return None
        return union


class _PackedCrashSync(_PackedSendOmission):
    """Adds eq. (2): alive processes must suspect last round's union."""

    def initial_state(self) -> tuple[int, int | None]:
        return (0, None)

    def advance(self, state, rint):
        union = self.domain.round_union(rint)
        return (state[0] | union, union)

    def mask_ok(self, state, pid, mask) -> bool:
        cumulative, required = state
        if not _PackedSendOmission.mask_ok(self, cumulative, pid, mask):
            return False
        if required and not (state[0] >> pid) & 1:
            return not (required & ~mask)
        return True

    def begin(self, state) -> int:
        return 0

    def push(self, state, aux, pid, mask, masks):
        cumulative, required = state
        if (mask >> pid) & 1 and not (cumulative >> pid) & 1:
            return None
        if required and not (cumulative >> pid) & 1 and (required & ~mask):
            return None
        union = aux | mask
        if (cumulative | union).bit_count() > self.f:
            return None
        return union


class _PackedAsyncMessagePassing(FastPackedPredicate):
    """|D(i,r)| ≤ f, purely per round: the mask table is the whole check."""

    def __init__(self, predicate: AsyncMessagePassing) -> None:
        super().__init__(predicate)
        self.f = predicate.f

    def size_bound(self, state) -> int:
        return self.f

    def mask_ok(self, state, pid, mask) -> bool:
        return mask.bit_count() <= self.f


class _PackedMixedResilience(FastPackedPredicate):
    """∃Q, |Q| ≤ t: per-process worst |D| ≤ f off Q, ≤ t on Q."""

    def __init__(self, predicate: MixedResilience) -> None:
        super().__init__(predicate)
        self.t = predicate.t
        self.f = predicate.f

    def initial_state(self) -> tuple[int, ...]:
        return (0,) * self.n

    def advance(self, state, rint):
        masks = self.domain.round_masks(rint)
        return tuple(
            max(w, mask.bit_count()) for w, mask in zip(state, masks)
        )

    def size_bound(self, state) -> int:
        return self.t

    def mask_ok(self, state, pid, mask) -> bool:
        return mask.bit_count() <= self.t

    def begin(self, state):
        # (heavy count among placed pids, suffix heavy lower bounds): the
        # unplaced pids j keep at least their historical worst, so
        # suffix[i] = |{j ≥ i : state[j] > f}| bounds Q membership below.
        suffix = [0] * (self.n + 1)
        for pid in range(self.n - 1, -1, -1):
            suffix[pid] = suffix[pid + 1] + (1 if state[pid] > self.f else 0)
        return (0, tuple(suffix))

    def push(self, state, aux, pid, mask, masks):
        heavy, suffix = aux
        if max(state[pid], mask.bit_count()) > self.f:
            heavy += 1
        if heavy + suffix[pid + 1] > self.t:
            return None
        return (heavy, suffix)


class _PackedSharedMemorySWMR(_PackedAsyncMessagePassing):
    """Adds eq. (4): the round union never covers everyone."""

    def begin(self, state) -> int:
        return 0

    def push(self, state, aux, pid, mask, masks):
        union = aux | mask
        if union == self.domain.full:
            return None
        return union


class _PackedAntisymmetric(_PackedAsyncMessagePassing):
    """Adds pⱼ∈D(i,r) ⇒ pᵢ∉D(j,r) — checked pairwise against placed masks."""

    def push(self, state, aux, pid, mask, masks):
        below = mask & ((1 << pid) - 1)
        for j in iter_bits(below):
            if (masks[j] >> pid) & 1:
                return None
        return aux


class _PackedAtomicSnapshot(_PackedAsyncMessagePassing):
    """Adds pᵢ∉D(i,r) and the per-round ⊆-chain (pairwise comparability)."""

    def __init__(self, predicate: AtomicSnapshot) -> None:
        super().__init__(predicate)
        self._pid_tables: dict[tuple[int, int], tuple[int, ...]] = {}

    def pid_masks(self, state, pid, max_d_size):
        bound = self.f if max_d_size is None else min(self.f, max_d_size)
        key = (pid, bound)
        cached = self._pid_tables.get(key)
        if cached is None:
            cached = self._pid_tables[key] = tuple(
                mask
                for mask in self.domain.masks_by_rank(bound)
                if not (mask >> pid) & 1
            )
        return cached

    def mask_ok(self, state, pid, mask) -> bool:
        return mask.bit_count() <= self.f and not (mask >> pid) & 1

    def push(self, state, aux, pid, mask, masks):
        # A family is a ⊆-chain iff every pair is ⊆-comparable.
        for j in range(pid):
            placed = masks[j]
            if (mask & ~placed) and (placed & ~mask):
                return None
        return aux


class _PackedEventuallyStrong(FastPackedPredicate):
    """|⋃⋃D| < n over a cumulative mask state."""

    def initial_state(self) -> int:
        return 0

    def advance(self, state, rint):
        return state | self.domain.round_union(rint)

    def begin(self, state) -> int:
        return 0

    def push(self, state, aux, pid, mask, masks):
        union = aux | mask
        if (state | union) == self.domain.full:
            return None
        return union


class _PackedKSetDetector(FastPackedPredicate):
    """|⋃D − ⋂D| < k per round; the disagreement only grows as masks land."""

    def __init__(self, predicate: KSetDetector) -> None:
        super().__init__(predicate)
        self.k = predicate.k

    def begin(self, state):
        return (0, self.domain.full)  # (union, intersection) of placed masks

    def push(self, state, aux, pid, mask, masks):
        union = aux[0] | mask
        inter = aux[1] & mask
        if (union & ~inter).bit_count() >= self.k:
            return None
        return (union, inter)
