"""A thin facade tying a model predicate to an adversary: the RRFD proper.

In the paper, a *system* is the pair (round structure, predicate); running an
algorithm "in system A" means running it against some adversary whose
suspicion choices satisfy A's predicate.  :class:`RoundByRoundFaultDetector`
packages that pairing so user code can say::

    rrfd = RoundByRoundFaultDetector(KSetDetector(n, k), seed=7)
    trace = rrfd.run(protocol, inputs, max_rounds=5)

and get a validated execution of the model.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.adversary import Adversary, PredicateAdversary
from repro.core.executor import run_protocol
from repro.core.predicate import Predicate
from repro.core.algorithm import Protocol
from repro.core.types import ExecutionTrace
from repro.util.rng import make_rng

__all__ = ["RoundByRoundFaultDetector"]


class RoundByRoundFaultDetector:
    """A model predicate plus a (by default random) adversary realising it.

    Args:
        predicate: the model's guarantee over suspicion sets.
        seed: seed for the default random adversary.
        adversary: override the adversary entirely (it is still validated
            against ``predicate`` on every round).
        overlap_prob: probability the default adversary delivers a message
            from a sender it simultaneously suspects (detector unreliability).
    """

    def __init__(
        self,
        predicate: Predicate,
        *,
        seed: int | None = 0,
        adversary: Adversary | None = None,
        overlap_prob: float = 0.0,
    ) -> None:
        self.predicate = predicate
        self.adversary = adversary or PredicateAdversary(
            predicate, make_rng(seed), overlap_prob=overlap_prob
        )
        if self.adversary.n != predicate.n:
            raise ValueError(
                f"adversary n={self.adversary.n} ≠ predicate n={predicate.n}"
            )

    @property
    def n(self) -> int:
        return self.predicate.n

    def run(
        self,
        protocol: Protocol,
        inputs: Sequence[Any],
        *,
        max_rounds: int,
        crashed_stop_emitting: bool = False,
    ) -> ExecutionTrace:
        """Execute ``protocol`` in this model and return the trace."""
        return run_protocol(
            protocol,
            inputs,
            self.adversary,
            max_rounds=max_rounds,
            predicate=self.predicate,
            crashed_stop_emitting=crashed_stop_emitting,
        )

    def describe(self) -> str:
        return self.predicate.describe()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoundByRoundFaultDetector({self.predicate!r})"
