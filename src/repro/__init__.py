"""repro — Round-by-Round Fault Detectors, executable.

A production-quality reproduction of Eli Gafni's PODC 1998 paper
"Round-by-Round Fault Detectors: Unifying Synchrony and Asynchrony".

The library provides:

- the **RRFD kernel** (:mod:`repro.core`): round-based executions in which a
  model is a *predicate* over per-round suspicion sets ``D(i, r)``;
- **substrates** (:mod:`repro.substrates`): from-scratch simulators for every
  traditional system the paper discusses — synchronous message passing with
  crash/omission faults, asynchronous message passing, SWMR and
  atomic-snapshot shared memory, the ABD emulation, and the semi-synchronous
  Dolev–Dwork–Stockmeyer model;
- **protocols** (:mod:`repro.protocols`): adopt-commit, one-round k-set
  agreement, consensus, FloodSet-style synchronous agreement, and the paper's
  2-step semi-synchronous consensus;
- **simulations** (:mod:`repro.simulations`): the paper's cross-model
  reductions (Theorems 3.3, 4.1, 4.3; Section 2 items 3–6);
- **analysis** (:mod:`repro.analysis`): exhaustive solvability checking that
  verifies the synchronous lower bounds (Corollaries 4.2/4.4) for small
  systems.

Quick start::

    from repro import KSetDetector, RoundByRoundFaultDetector
    from repro.protocols.kset import kset_protocol

    n, k = 8, 2
    rrfd = RoundByRoundFaultDetector(KSetDetector(n, k), seed=1)
    trace = rrfd.run(kset_protocol(), inputs=list(range(n)), max_rounds=1)
    assert len(trace.decided_values) <= k        # Theorem 3.1
"""

from repro.core import (
    Adversary,
    AsyncMessagePassing,
    AtomicSnapshot,
    Conjunction,
    CrashPatternAdversary,
    CrashSync,
    EventuallyStrong,
    ExecutionTrace,
    FailureFreeAdversary,
    FullInformationProcess,
    FunctionAdversary,
    KSetDetector,
    MixedResilience,
    Predicate,
    PredicateAdversary,
    Protocol,
    RoundByRoundFaultDetector,
    RoundExecutor,
    RoundProcess,
    RoundView,
    ScriptedAdversary,
    SemiSyncEquality,
    SendOmissionSync,
    SharedMemoryAntisymmetric,
    SharedMemorySWMR,
    Unconstrained,
    check_submodel,
    make_protocol,
    run_protocol,
)

__version__ = "1.0.0"

__all__ = [
    "Adversary",
    "AsyncMessagePassing",
    "AtomicSnapshot",
    "Conjunction",
    "CrashPatternAdversary",
    "CrashSync",
    "EventuallyStrong",
    "ExecutionTrace",
    "FailureFreeAdversary",
    "FullInformationProcess",
    "FunctionAdversary",
    "KSetDetector",
    "MixedResilience",
    "Predicate",
    "PredicateAdversary",
    "Protocol",
    "RoundByRoundFaultDetector",
    "RoundExecutor",
    "RoundProcess",
    "RoundView",
    "ScriptedAdversary",
    "SemiSyncEquality",
    "SendOmissionSync",
    "SharedMemoryAntisymmetric",
    "SharedMemorySWMR",
    "Unconstrained",
    "check_submodel",
    "make_protocol",
    "run_protocol",
    "__version__",
]
