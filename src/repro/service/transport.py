"""Live transport: framing, backoff, fault injection, resilient peer links.

The wire format is length-prefixed JSON: a 4-byte big-endian length followed
by a UTF-8 JSON document.  Protocol payloads pass through a tagged encoding
(:func:`encode_payload` / :func:`decode_payload`) that survives the
JSON round trip losslessly for the payload shapes the catalog emits —
tuples, frozensets, and dicts with non-string keys all come back as the
exact Python values the sender emitted, which is what lets
:mod:`repro.core.audit` check communication closure (*payload equality*)
on live runs.

:class:`PeerLink` is one ordered-pair connection ``src → dst`` shared by
every protocol instance (and the heartbeat stream): a bounded send queue
with backpressure, a writer task that batches ready messages into a single
frame, per-message write timeouts, and reconnection with capped exponential
backoff plus jitter when the connection drops mid-stream.

:class:`FaultInjector` adapts a
:class:`~repro.substrates.messaging.chaos.FaultPlan` to live connections:
the same drop/dup/jitter/spike/partition/crash-window vocabulary the
simulated :class:`~repro.substrates.messaging.chaos.ChaosNetwork` executes,
applied at send/receive time against the service's monotonic clock.  All
chaos decisions draw from one seeded ``random.Random``, so the *decisions*
(not the timings) of a live run are reproducible.
"""

from __future__ import annotations

import asyncio
import json
import random
import struct
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable

from repro import obs
from repro.substrates.messaging.chaos import FaultPlan

__all__ = [
    "FrameError",
    "MAX_FRAME",
    "encode_frame",
    "read_frame",
    "encode_payload",
    "decode_payload",
    "Backoff",
    "FaultInjector",
    "ServiceStats",
    "PeerLink",
]

#: Default ceiling on a single frame's JSON body (1 MiB).
MAX_FRAME = 1 << 20

_LEN = struct.Struct(">I")


class FrameError(ValueError):
    """A frame violated the wire format (oversized, truncated, not JSON)."""


# ---------------------------------------------------------------------------
# framing


def encode_frame(doc: dict[str, Any], *, max_frame: int = MAX_FRAME) -> bytes:
    """``doc`` as one length-prefixed JSON frame."""
    body = json.dumps(doc, separators=(",", ":"), sort_keys=True).encode("utf-8")
    if len(body) > max_frame:
        raise FrameError(f"frame of {len(body)} bytes exceeds max {max_frame}")
    return _LEN.pack(len(body)) + body


async def read_frame(
    reader: asyncio.StreamReader, *, max_frame: int = MAX_FRAME
) -> dict[str, Any] | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_LEN.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    (length,) = _LEN.unpack(header)
    if length > max_frame:
        raise FrameError(f"incoming frame of {length} bytes exceeds max {max_frame}")
    try:
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None  # connection died mid-frame; caller reconnect logic owns it
    try:
        doc = json.loads(body)
    except ValueError as exc:
        raise FrameError(f"frame body is not JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise FrameError(f"frame body must be an object, got {type(doc).__name__}")
    return doc


# ---------------------------------------------------------------------------
# payload codec — protocol payloads must survive JSON bit-exactly

_TAG = "!"


def encode_payload(value: Any) -> Any:
    """A JSON-safe encoding of a protocol payload.

    Scalars pass through; containers are tagged so tuples stay tuples,
    frozensets stay frozensets and dict keys keep their types on decode —
    the catalog's emissions (``("commit", v)`` tuples, view dicts keyed by
    int pid, suspicion frozensets) must round-trip *equal*, or the live
    communication-closure audit would flag every relayed payload.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {_TAG: "t", "v": [encode_payload(v) for v in value]}
    if isinstance(value, list):
        return {_TAG: "l", "v": [encode_payload(v) for v in value]}
    if isinstance(value, (frozenset, set)):
        items = [encode_payload(v) for v in value]
        items.sort(key=lambda e: json.dumps(e, sort_keys=True))
        return {_TAG: "fs" if isinstance(value, frozenset) else "s", "v": items}
    if isinstance(value, dict):
        return {
            _TAG: "d",
            "v": [[encode_payload(k), encode_payload(v)] for k, v in value.items()],
        }
    raise FrameError(
        f"payload of type {type(value).__name__} is not wire-encodable"
    )


def decode_payload(value: Any) -> Any:
    """Inverse of :func:`encode_payload`."""
    if not isinstance(value, dict):
        if isinstance(value, list):  # only produced by hand-built frames
            return [decode_payload(v) for v in value]
        return value
    tag = value.get(_TAG)
    items = value.get("v", ())
    if tag == "t":
        return tuple(decode_payload(v) for v in items)
    if tag == "l":
        return [decode_payload(v) for v in items]
    if tag == "fs":
        return frozenset(decode_payload(v) for v in items)
    if tag == "s":
        return {decode_payload(v) for v in items}
    if tag == "d":
        return {decode_payload(k): decode_payload(v) for k, v in items}
    raise FrameError(f"unknown payload tag {tag!r}")


# ---------------------------------------------------------------------------
# backoff


@dataclass
class Backoff:
    """Capped exponential backoff with multiplicative jitter.

    ``delay(attempt)`` for attempt 1, 2, ... is
    ``min(base * factor**(attempt-1), cap) * (1 + jitter * u)`` with
    ``u ~ U[0, 1)`` from the owned generator — jitter only ever *adds*, so
    a delay is never shorter than the deterministic schedule, and
    simultaneous retriers cannot stay phase-locked into retry storms.
    """

    base: float = 0.05
    factor: float = 2.0
    cap: float = 2.0
    jitter: float = 0.25
    rng: random.Random = field(default_factory=lambda: random.Random(0))

    def __post_init__(self) -> None:
        if self.base <= 0 or self.factor < 1 or self.cap < self.base:
            raise ValueError(
                f"need base > 0, factor ≥ 1, cap ≥ base; got "
                f"{self.base}, {self.factor}, {self.cap}"
            )
        if self.jitter < 0:
            raise ValueError(f"jitter must be ≥ 0, got {self.jitter}")

    def delay(self, attempt: int) -> float:
        if attempt < 1:
            raise ValueError(f"attempt numbers start at 1, got {attempt}")
        raw = min(self.base * self.factor ** (attempt - 1), self.cap)
        if self.jitter:
            raw *= 1.0 + self.jitter * self.rng.random()
        return raw


# ---------------------------------------------------------------------------
# fault injection against live connections


class FaultInjector:
    """A :class:`FaultPlan` executed against the live transport.

    The plan's time axis is interpreted on the service clock (seconds since
    the runtime started).  The decision pipeline per message mirrors the
    simulated :class:`~repro.substrates.messaging.chaos.ChaosNetwork`:
    crash window (sender), partition, drop, duplication, then per-copy
    extra latency (jitter + spike).  ``admit`` returns the list of copies
    to actually transmit, as per-copy extra delays — empty means the
    message is lost.
    """

    def __init__(
        self,
        plan: FaultPlan | None,
        *,
        seed: int = 0,
        clock: Callable[[], float],
    ) -> None:
        self.plan = plan or FaultPlan()
        self.rng = random.Random(seed)
        self.clock = clock

    def crashed(self, pid: int) -> bool:
        """Is ``pid`` inside one of its crash windows right now?"""
        now = self.clock()
        return any(
            w.covers(now) for w in self.plan.crashes.get(pid, ())
        )

    def admit(self, src: int, dst: int, stats: "ServiceStats") -> list[float]:
        """Fault-decide one ``src → dst`` message; returns per-copy delays."""
        now = self.clock()
        if self.crashed(src):
            stats.messages_dropped_crash += 1
            return []
        if self.plan.blocked(src, dst, now):
            stats.messages_partition_blocked += 1
            return []
        faults = self.plan.faults_for(src, dst)
        if faults.drop_prob and self.rng.random() < faults.drop_prob:
            stats.messages_dropped_chaos += 1
            return []
        copies = 1
        if faults.dup_prob and self.rng.random() < faults.dup_prob:
            copies = 2
            stats.messages_duplicated += 1
        delays = []
        for _ in range(copies):
            extra = 0.0
            if faults.jitter:
                extra += self.rng.uniform(0.0, faults.jitter)
            if faults.spike_prob and self.rng.random() < faults.spike_prob:
                extra += faults.spike
                stats.delay_spikes += 1
            if extra:
                stats.messages_delayed += 1
            delays.append(extra)
        return delays

    def deliverable(self, dst: int, stats: "ServiceStats") -> bool:
        """Receive-side check: a crashed process hears nothing."""
        if self.crashed(dst):
            stats.messages_dropped_crash += 1
            return False
        return True


# ---------------------------------------------------------------------------
# stats — the shared obs field-snapshot/merge/publish contract


@dataclass
class ServiceStats:
    """Live-transport and runtime counters (the ``service.*`` family).

    Plain int fields on the hot path; exported through the shared
    :mod:`repro.obs.metrics` field contract, so ``--metrics`` reports them
    exactly like ``overlay.*`` / ``chaos.*``.  ``queue_high_water`` is a
    high-water mark, not a counter — it merges by ``max`` and publishes as
    a gauge, outside the counter fields.
    """

    frames_sent: int = 0
    frames_received: int = 0
    batches_sent: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped_chaos: int = 0
    messages_dropped_crash: int = 0
    messages_partition_blocked: int = 0
    messages_duplicated: int = 0
    messages_delayed: int = 0
    delay_spikes: int = 0
    retries: int = 0
    retransmissions: int = 0
    reconnects: int = 0
    send_failures: int = 0
    heartbeats_sent: int = 0
    suspicions_raised: int = 0
    suspicions_cleared: int = 0
    timeout_bumps: int = 0
    degraded_rounds: int = 0
    parked_instances: int = 0
    instances_decided: int = 0

    queue_high_water: int = field(default=0, compare=False)

    _COUNTER_FIELDS = (
        "frames_sent", "frames_received", "batches_sent", "messages_sent",
        "messages_delivered", "messages_dropped_chaos",
        "messages_dropped_crash", "messages_partition_blocked",
        "messages_duplicated", "messages_delayed", "delay_spikes", "retries",
        "retransmissions", "reconnects", "send_failures", "heartbeats_sent",
        "suspicions_raised", "suspicions_cleared", "timeout_bumps",
        "degraded_rounds", "parked_instances", "instances_decided",
    )

    def snapshot(self) -> dict[str, int]:
        """Plain picklable snapshot (the shared obs contract), including
        the high-water mark under its own key."""
        snap = obs.field_snapshot(self, self._COUNTER_FIELDS)
        snap["queue_high_water"] = self.queue_high_water
        return snap

    def merge(self, other: "ServiceStats | dict[str, int]") -> None:
        """Counters add; the queue high-water mark merges by ``max``."""
        snap = other.snapshot() if isinstance(other, ServiceStats) else other
        obs.merge_field_snapshots(self, snap, self._COUNTER_FIELDS)
        self.queue_high_water = max(
            self.queue_high_water, snap.get("queue_high_water", 0)
        )

    def publish(self, metrics: "obs.Metrics", prefix: str = "service") -> None:
        """Counters as ``{prefix}.{field}``; high-water as a gauge."""
        obs.publish_fields(metrics, prefix, self, self._COUNTER_FIELDS)
        if metrics.enabled:
            gauge = metrics.gauge(f"{prefix}.queue_high_water")
            gauge.set(max(self.queue_high_water, gauge.value or 0))


# ---------------------------------------------------------------------------
# the resilient peer link


class PeerLink:
    """One ordered-pair connection ``src → dst``, shared by all instances.

    Messages enter through :meth:`send` into a *bounded* queue —
    ``await``-ing the put is the backpressure: a producer flooding a slow
    link is slowed to the link's pace instead of ballooning memory.  A
    writer task drains the queue; consecutive ready messages coalesce into
    one ``batch`` frame (round batching across the instances multiplexed on
    the link).  Writes run under a per-message timeout; on timeout or
    connection failure the link reconnects with capped exponential backoff
    plus jitter and retransmits the in-flight batch.  A message is dropped
    (counted in ``send_failures``) only after ``max_retries`` failed
    transmission attempts — loss beyond that budget is the round layer's
    (retransmit + suspicion) problem, by design.
    """

    def __init__(
        self,
        src: int,
        dst: int,
        *,
        connect: Callable[[], Awaitable[tuple[asyncio.StreamReader, asyncio.StreamWriter]]],
        injector: FaultInjector,
        stats: ServiceStats,
        backoff: Backoff,
        queue_capacity: int = 1024,
        batch_max: int = 64,
        write_timeout: float = 5.0,
        max_retries: int = 8,
        max_frame: int = MAX_FRAME,
    ) -> None:
        self.src = src
        self.dst = dst
        self._connect = connect
        self.injector = injector
        self.stats = stats
        self.backoff = backoff
        self.batch_max = batch_max
        self.write_timeout = write_timeout
        self.max_retries = max_retries
        self.max_frame = max_frame
        self.queue: asyncio.Queue[tuple[dict[str, Any], float]] = asyncio.Queue(
            maxsize=queue_capacity
        )
        self._writer: asyncio.StreamWriter | None = None
        self._task: asyncio.Task | None = None
        self._closed = False
        self._ever_connected = False

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(
            self._drain(), name=f"link-{self.src}->{self.dst}"
        )

    async def close(self) -> None:
        self._closed = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):
                pass
            self._task = None
        await self._close_writer()

    async def _close_writer(self) -> None:
        writer, self._writer = self._writer, None
        if writer is not None:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    # ----------------------------------------------------------------- send

    async def send(self, doc: dict[str, Any]) -> None:
        """Enqueue ``doc`` for transmission, applying the fault plan.

        Blocks (backpressure) when the bounded queue is full.  Dropped /
        blocked / crashed messages are consumed here and never reach the
        wire, exactly like the simulated chaos network's send path.
        """
        self.stats.messages_sent += 1
        for delay in self.injector.admit(self.src, self.dst, self.stats):
            await self.queue.put((doc, delay))
            size = self.queue.qsize()
            if size > self.stats.queue_high_water:
                self.stats.queue_high_water = size

    def send_nowait(self, doc: dict[str, Any]) -> bool:
        """Best-effort :meth:`send` for traffic that must never block the
        caller (heartbeats): a full queue drops the message instead of
        exerting backpressure, because a heartbeat delayed behind a stuck
        queue is worthless anyway.  Returns whether it was enqueued."""
        self.stats.messages_sent += 1
        enqueued = False
        for delay in self.injector.admit(self.src, self.dst, self.stats):
            try:
                self.queue.put_nowait((doc, delay))
            except asyncio.QueueFull:
                self.stats.send_failures += 1
                continue
            enqueued = True
            size = self.queue.qsize()
            if size > self.stats.queue_high_water:
                self.stats.queue_high_water = size
        return enqueued

    # --------------------------------------------------------------- writer

    async def _drain(self) -> None:
        while not self._closed:
            doc, delay = await self.queue.get()
            if delay > 0:
                # Injected extra latency (jitter / spike).  Applied in-line:
                # the link models one TCP stream, so delaying a message
                # delays what is queued behind it, like a real slow link.
                await asyncio.sleep(delay)
            batch = [doc]
            while len(batch) < self.batch_max:
                try:
                    extra_doc, extra_delay = self.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra_delay > 0:
                    # keep delayed messages one-per-write so their latency
                    # is honoured; re-queue would reorder, so just flush
                    # the current batch first and sleep on the next loop.
                    batch.append(extra_doc)
                    await self._transmit(batch)
                    batch = []
                    await asyncio.sleep(extra_delay)
                    break
                batch.append(extra_doc)
            if batch:
                await self._transmit(batch)

    async def _transmit(self, batch: list[dict[str, Any]]) -> None:
        if len(batch) == 1:
            frame = encode_frame(
                {"kind": "m", "src": self.src, "m": batch[0]},
                max_frame=self.max_frame,
            )
        else:
            frame = encode_frame(
                {"kind": "batch", "src": self.src, "m": batch},
                max_frame=self.max_frame,
            )
            self.stats.batches_sent += 1
        for attempt in range(1, self.max_retries + 1):
            try:
                writer = await self._ensure_writer()
                writer.write(frame)
                await asyncio.wait_for(writer.drain(), self.write_timeout)
                self.stats.frames_sent += 1
                return
            except (ConnectionError, OSError, asyncio.TimeoutError):
                await self._close_writer()
                self.stats.retries += 1
                tracer = obs.current_tracer()
                if tracer.enabled:
                    tracer.event(
                        "service.retry",
                        src=self.src, dst=self.dst, attempt=attempt,
                    )
                if attempt < self.max_retries:
                    await asyncio.sleep(self.backoff.delay(attempt))
        self.stats.send_failures += len(batch)

    async def _ensure_writer(self) -> asyncio.StreamWriter:
        # One attempt only — _transmit owns the retry/backoff budget, so a
        # hard-down peer costs max_retries attempts total, not squared.
        if self._writer is not None:
            return self._writer
        _, writer = await asyncio.wait_for(self._connect(), self.write_timeout)
        hello = encode_frame({"kind": "hello", "src": self.src})
        writer.write(hello)
        await asyncio.wait_for(writer.drain(), self.write_timeout)
        self._writer = writer
        if self._ever_connected:
            self.stats.reconnects += 1
            tracer = obs.current_tracer()
            if tracer.enabled:
                tracer.event("service.reconnect", src=self.src, dst=self.dst)
        self._ever_connected = True
        return writer
