"""The live asyncio runtime: the protocol catalog over real sockets.

One :class:`ServiceRuntime` hosts ``n`` :class:`ServiceEndpoint`\\ s — one per
process id — each with a real TCP server on an ephemeral localhost port, a
resilient :class:`~repro.service.transport.PeerLink` to every peer, a
heartbeat loop feeding a :class:`~repro.service.suspicion.SuspicionMonitor`,
and any number of concurrent protocol *instances* multiplexed over the
shared links.

Each instance participant replays the round overlay's contract against real
time: emit round ``r``, retransmit until acked, advance when one of three
gates opens —

1. all ``n`` round-``r`` messages arrived (``D = ∅``);
2. at least ``n − f`` arrived and every unheard sender is currently
   suspected by the heartbeat detector (``D(i, r)`` = the unheard, *backed*
   by live suspicion — the detector feeds the round, exactly as the
   simulated :class:`~repro.substrates.messaging.heartbeat.HeartbeatSystem`
   feeds the executor);
3. the round deadline expires — graceful degradation
   (:mod:`repro.service.degrade`): advance with the unheard as ``D`` if at
   least ``n − f`` arrived, else *park* the instance.  Either way a
   structured event is emitted and the participant never hangs.

Every recorded view therefore satisfies ``S(i,r) ∪ D(i,r) = S`` and
``|D(i,r)| ≤ f`` *by construction*; what remains to be checked — and is
checked, by :func:`audit_instance` and by projecting through the existing
:meth:`~repro.substrates.messaging.rounds.OverlayResult.to_trace` path — is
round ordering and communication closure on what actually crossed the wire.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Sequence

from repro import obs
from repro.core.algorithm import Protocol, RoundProcess
from repro.core.audit import AuditReport, AuditViolation, ExecutionAuditor
from repro.core.types import ExecutionTrace, RoundView
from repro.protocols.adopt_commit import adopt_commit_protocol
from repro.protocols.consensus import floodset_consensus_protocol
from repro.protocols.floodset import floodmin_protocol, rounds_needed
from repro.service.degrade import DegradationEvent, DegradationReport
from repro.service.suspicion import SuspicionMonitor
from repro.service.transport import (
    MAX_FRAME,
    Backoff,
    FaultInjector,
    PeerLink,
    ServiceStats,
    decode_payload,
    encode_payload,
    read_frame,
    FrameError,
)
from repro.substrates.messaging.chaos import FaultPlan
from repro.substrates.messaging.rounds import OverlayResult
from repro.util.rng import derive_seed

__all__ = [
    "ServiceConfig",
    "InstanceSpec",
    "InstanceOutcome",
    "ParticipantRecord",
    "InstanceResult",
    "ServiceEndpoint",
    "ServiceRuntime",
    "resolve_protocol",
    "audit_instance",
    "run_service",
]


def resolve_protocol(name: str, *, f: int, k: int = 1) -> tuple[Protocol, int]:
    """Map a catalog name to a crash-tolerant live protocol and its depth.

    The live service runs the *synchronous-model* members of the catalog —
    their correctness needs only the crash-fault round structure the
    runtime provides, not a stronger detector predicate:

    - ``"consensus"`` → FloodSet (``f + 1`` rounds);
    - ``"kset"`` → FloodMin (``⌊f/k⌋ + 1`` rounds);
    - ``"adopt-commit"`` → the two-round adopt-commit (graceful by nature:
      under live suspicion it may adopt instead of commit, never disagree).
    """
    if name == "consensus":
        return floodset_consensus_protocol(f), rounds_needed(f, 1)
    if name == "kset":
        return floodmin_protocol(f, k), rounds_needed(f, k)
    if name == "adopt-commit":
        return adopt_commit_protocol(), 2
    if name.startswith("cc-"):
        # The communication-closure catalog: the same crash-tolerant
        # protocols routed through the async→round compiler, plus native
        # tagged-handler programs.  Lazy import keeps repro.cc optional on
        # the service's import path.
        from repro.cc.catalog import resolve_cc_protocol

        return resolve_cc_protocol(name, f=f, k=k)
    raise ValueError(
        f"unknown service protocol {name!r} "
        "(expected consensus | kset | adopt-commit | cc-*)"
    )


@dataclass
class ServiceConfig:
    """Tuning knobs for one :class:`ServiceRuntime`."""

    n: int
    f: int
    host: str = "127.0.0.1"
    plan: FaultPlan | None = None
    seed: int = 0
    heartbeat_interval: float = 0.05
    initial_timeout: float = 0.5
    timeout_bump: float = 0.25
    hysteresis: int = 2
    round_deadline: float = 2.0
    retransmit_base: float = 0.1
    retransmit_cap: float = 0.5
    retransmit_retries: int = 10
    connect_base: float = 0.05
    backoff_cap: float = 1.0
    backoff_jitter: float = 0.25
    queue_capacity: int = 1024
    batch_max: int = 64
    write_timeout: float = 5.0
    max_retries: int = 5
    max_frame: int = MAX_FRAME

    def __post_init__(self) -> None:
        if not 0 <= self.f < self.n:
            raise ValueError(f"need 0 ≤ f < n, got f={self.f}, n={self.n}")
        for name in ("heartbeat_interval", "round_deadline", "retransmit_base"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0, got {getattr(self, name)}")


@dataclass(frozen=True)
class InstanceSpec:
    """One protocol instance to run on the service."""

    name: str
    protocol: str  # "consensus" | "kset" | "adopt-commit"
    inputs: tuple[Any, ...]
    k: int = 1


class InstanceOutcome(str, Enum):
    """How an instance terminated — it always terminates."""

    DECIDED = "decided"  # every live participant decided, no degradation
    DEGRADED = "degraded"  # terminated, but some round degraded / undecided
    PARKED = "parked"  # some participant parked (fault budget exceeded)


class _GhostProcess:
    """Stand-in process for a participant killed before recording anything."""

    decided = False
    decision = None


@dataclass
class ParticipantRecord:
    """One process's completed (or truncated) instance execution.

    Duck-types the slice of ``RoundOverlayNode`` that
    :meth:`~repro.substrates.messaging.rounds.OverlayResult.to_trace` and
    :meth:`~repro.core.audit.ExecutionAuditor.check_views` consume:
    ``views``, ``emissions``, and ``process``.
    """

    pid: int
    views: list[RoundView]
    emissions: dict[int, Any]
    process: RoundProcess | _GhostProcess
    parked: bool = False
    crashed: bool = False
    late_discarded: int = 0
    late_arrivals: list[tuple[int, int, int]] = field(default_factory=list)


@dataclass
class InstanceResult:
    """Outcome of one live instance across all processes."""

    spec: InstanceSpec
    n: int
    f: int
    records: list[ParticipantRecord]
    degradations: list[DegradationEvent]
    crashed: frozenset[int]
    started: float = 0.0
    finished: float = 0.0

    @property
    def latency(self) -> float:
        return self.finished - self.started

    @property
    def decisions(self) -> list[Any]:
        return [r.process.decision for r in self.records]

    @property
    def outcome(self) -> InstanceOutcome:
        if any(r.parked for r in self.records):
            return InstanceOutcome.PARKED
        live = [r for r in self.records if not r.crashed]
        if self.degradations or any(not r.process.decided for r in live):
            return InstanceOutcome.DEGRADED
        return InstanceOutcome.DECIDED

    def to_overlay_result(self) -> OverlayResult:
        """The live execution in the overlay's result shape — the bridge to
        the existing trace/audit machinery."""
        return OverlayResult(
            n=self.n,
            f=self.f,
            inputs=self.spec.inputs,
            nodes=self.records,  # duck-typed: views / emissions / process
            network=None,
            crashed=self.crashed,
        )

    def to_trace(self) -> ExecutionTrace:
        """Project through ``OverlayResult.to_trace`` (common-prefix rounds)."""
        return self.to_overlay_result().to_trace()


def audit_instance(
    result: InstanceResult, *, strict_closure: bool = False
) -> AuditReport:
    """Check the RRFD invariants on one live instance.

    Runs the same per-view checks as the simulator audit — round order,
    ``S ∪ D = S``, ``|D| ≤ f``, and communication closure against the
    senders' *recorded emissions* (so a payload corrupted or cross-round
    leaked by the transport is caught).  There is no stall check: the
    degradation machinery makes stalls structurally impossible, and parks
    are reported as explicit events instead.

    ``strict_closure`` additionally reports every late delivery the
    participants had to discard as a ``communication-closure`` violation
    (see :meth:`repro.core.audit.ExecutionAuditor.check_views`).
    """
    auditor = ExecutionAuditor(result.n, result.f)
    violations: list[AuditViolation] = []
    views_checked = 0
    for record in result.records:
        violations.extend(
            auditor.check_views(
                record.pid, record.views, result.records,
                late_arrivals=(
                    record.late_arrivals if strict_closure else None
                ),
            )
        )
        views_checked += len(record.views)
    return AuditReport(
        violations=tuple(violations), stall=None, views_checked=views_checked
    )


# ---------------------------------------------------------------------------
# participants


class _Participant:
    """One (endpoint, instance) pair: the emit/receive loop against a clock."""

    def __init__(
        self,
        endpoint: "ServiceEndpoint",
        spec: InstanceSpec,
        process: RoundProcess,
        max_rounds: int,
    ) -> None:
        self.endpoint = endpoint
        self.spec = spec
        self.process = process
        self.max_rounds = max_rounds
        self.pid = endpoint.pid
        cfg = endpoint.runtime.config
        self.n = cfg.n
        self.f = cfg.f
        self.current_round = 0
        self.halted = False
        self.parked = False
        self.crashed = False  # parked while inside a plan crash window
        self.buffers: dict[int, dict[int, Any]] = {}
        self.views: list[RoundView] = []
        self.emissions: dict[int, Any] = {}
        self.acks: dict[int, set[int]] = {}
        self.late_discarded = 0
        self.late_arrivals: list[tuple[int, int, int]] = []
        # Per-instance cc recorder (duck-typed TraceRecorder), attached via
        # ServiceRuntime.recorders before the instance starts; None keeps
        # the hot path free of recording branches' costs beyond one check.
        self.recorder: Any = endpoint.runtime.recorders.get(spec.name)
        self._wake = asyncio.Event()
        self._side_tasks: list[asyncio.Task] = []
        self._backoff = Backoff(
            base=cfg.retransmit_base,
            factor=2.0,
            cap=cfg.retransmit_cap,
            jitter=cfg.backoff_jitter,
            rng=random.Random(
                derive_seed("service-retransmit", cfg.seed, self.pid, spec.name)
            ),
        )

    # ------------------------------------------------------------- inbound

    def on_data(self, src: int, round_number: int, payload: Any) -> None:
        if self.halted or round_number < self.current_round:
            self.late_discarded += 1
            if not self.halted:
                # Attributed boundary crossing: a round the participant has
                # already left (strict-closure audit + cc certification).
                self.late_arrivals.append(
                    (src, round_number, self.current_round)
                )
                if self.recorder is not None:
                    self.recorder.on_discard(
                        self.pid, src, round_number, self.current_round
                    )
            return
        if self.recorder is not None:
            self.recorder.on_deliver(
                src, self.pid, (round_number, payload),
                self.endpoint.runtime.clock(),
            )
        # Dedupe by (src, round): the first copy wins, duplicates are noise.
        self.buffers.setdefault(round_number, {}).setdefault(src, payload)
        self._wake.set()

    def on_ack(self, src: int, round_number: int) -> None:
        self.acks.setdefault(round_number, set()).add(src)

    def wake(self) -> None:
        self._wake.set()

    # ----------------------------------------------------------- the loop

    async def run(self) -> None:
        clock = self.endpoint.runtime.clock
        for r in range(1, self.max_rounds + 1):
            self.current_round = r
            payload = self.process.emit(r)
            self.emissions[r] = payload
            self.buffers.setdefault(r, {})[self.pid] = payload  # self-delivery
            self.acks.setdefault(r, set()).add(self.pid)
            if self.recorder is not None:
                now = clock()
                for dst in range(self.n):
                    self.recorder.on_send(self.pid, dst, (r, payload), now)
                # Self-delivery is the buffer write above, not a socket
                # frame, so the delivery event is recorded here.
                self.recorder.on_deliver(self.pid, self.pid, (r, payload), now)
            await self.endpoint.broadcast_data(self.spec.name, r, payload)
            self._side_tasks.append(
                asyncio.get_running_loop().create_task(self._retransmit(r))
            )
            deadline_at = clock() + self.endpoint.runtime.config.round_deadline
            view = await self._wait_round(r, deadline_at)
            if view is None:  # parked
                break
            self.views.append(view)
            self.process.absorb(view)
            if self.recorder is not None:
                self.recorder.on_advance(self.pid, view, self.process.decided)
            tracer = obs.current_tracer()
            if tracer.enabled:
                tracer.event(
                    "service.advance",
                    instance=self.spec.name, pid=self.pid, round=r,
                    suspected=sorted(view.suspected),
                    decided=self.process.decided,
                )
        self.halted = True

    async def _wait_round(self, r: int, deadline_at: float) -> RoundView | None:
        clock = self.endpoint.runtime.clock
        everyone = frozenset(range(self.n))
        while True:
            if self.endpoint.killed or self.halted:
                return None
            received = self.buffers.get(r, {})
            missing = everyone - frozenset(received)
            if not missing:
                return self._close_round(r)
            if (
                len(received) >= self.n - self.f
                and missing <= self.endpoint.suspicion.suspected
            ):
                return self._close_round(r)
            remaining = deadline_at - clock()
            if remaining <= 0:
                return self._degrade(r, received, missing)
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), remaining)
            except asyncio.TimeoutError:
                pass

    def _close_round(self, r: int) -> RoundView:
        received = self.buffers.pop(r)
        suspected = frozenset(range(self.n)) - frozenset(received)
        return RoundView(
            pid=self.pid, round=r, messages=received,
            suspected=suspected, n=self.n,
        )

    def _degrade(
        self, r: int, received: dict[int, Any], missing: frozenset[int]
    ) -> RoundView | None:
        cfg = self.endpoint.runtime.config
        stats = self.endpoint.stats
        if (
            len(received) < self.n - self.f
            and self.endpoint.injector.crashed(self.pid)
        ):
            # Not degradation — this process is inside a plan crash window
            # and heard nothing because it is *down*.  It stops silently,
            # recorded as crashed; the survivors' suspicion handles it.
            self.crashed = True
            self.halted = True
            return None
        action = "advance" if len(received) >= self.n - self.f else "park"
        event = DegradationEvent(
            instance=self.spec.name,
            pid=self.pid,
            round=r,
            action=action,
            deadline=cfg.round_deadline,
            heard=frozenset(received),
            missing=missing,
            suspected=self.endpoint.suspicion.suspected,
            time=self.endpoint.runtime.clock(),
        )
        self.endpoint.runtime.degradations.add(event)
        tracer = obs.current_tracer()
        if tracer.enabled:
            tracer.event(f"service.{'degraded' if action == 'advance' else 'parked'}",
                         **event.to_doc())
        if action == "advance":
            stats.degraded_rounds += 1
            return self._close_round(r)
        stats.parked_instances += 1
        self.parked = True
        self.halted = True
        return None

    async def _retransmit(self, r: int) -> None:
        """Resend the round-``r`` emission until every peer acked it.

        Continues after this participant advances past ``r`` (laggards still
        need old rounds — the reliable overlay's rule), gives up after the
        retry budget: a peer silent that long is the suspicion machinery's
        concern, not the transport's.
        """
        cfg = self.endpoint.runtime.config
        everyone = set(range(self.n))
        for attempt in range(1, cfg.retransmit_retries + 1):
            await asyncio.sleep(self._backoff.delay(attempt))
            missing = everyone - self.acks.get(r, set())
            if not missing or self.endpoint.runtime.stopping:
                return
            for dst in sorted(missing):
                self.endpoint.stats.retransmissions += 1
                await self.endpoint.send_data(
                    dst, self.spec.name, r, self.emissions[r]
                )

    def cancel_side_tasks(self) -> None:
        for task in self._side_tasks:
            task.cancel()
        self._side_tasks.clear()

    def record(self, *, crashed: bool = False) -> ParticipantRecord:
        return ParticipantRecord(
            pid=self.pid,
            views=list(self.views),
            emissions=dict(self.emissions),
            process=self.process,
            parked=self.parked,
            crashed=crashed or self.crashed,
            late_discarded=self.late_discarded,
            late_arrivals=list(self.late_arrivals),
        )


# ---------------------------------------------------------------------------
# endpoints


class ServiceEndpoint:
    """One live process: TCP server, peer links, heartbeats, participants."""

    def __init__(self, runtime: "ServiceRuntime", pid: int) -> None:
        self.runtime = runtime
        self.pid = pid
        cfg = runtime.config
        self.stats = ServiceStats()
        self.injector = FaultInjector(
            cfg.plan,
            seed=derive_seed("service-chaos", cfg.seed, pid),
            clock=runtime.clock,
        )
        self.suspicion = SuspicionMonitor(
            pid,
            list(range(cfg.n)),
            initial_timeout=cfg.initial_timeout,
            timeout_bump=cfg.timeout_bump,
            hysteresis=cfg.hysteresis,
            stats=self.stats,
        )
        self.links: dict[int, PeerLink] = {}
        self.participants: dict[str, _Participant] = {}
        self.server: asyncio.base_events.Server | None = None
        self.port: int | None = None
        self.killed = False
        self._tasks: list[asyncio.Task] = []

    # ----------------------------------------------------------- lifecycle

    async def start_server(self) -> None:
        cfg = self.runtime.config
        self.server = await asyncio.start_server(
            self._handle_connection, cfg.host, 0
        )
        self.port = self.server.sockets[0].getsockname()[1]

    def open_links(self) -> None:
        cfg = self.runtime.config
        for dst in range(cfg.n):
            if dst == self.pid:
                continue
            link = PeerLink(
                self.pid,
                dst,
                connect=self._connector(dst),
                injector=self.injector,
                stats=self.stats,
                backoff=Backoff(
                    base=cfg.connect_base,
                    factor=2.0,
                    cap=cfg.backoff_cap,
                    jitter=cfg.backoff_jitter,
                    rng=random.Random(
                        derive_seed("service-backoff", cfg.seed, self.pid, dst)
                    ),
                ),
                queue_capacity=cfg.queue_capacity,
                batch_max=cfg.batch_max,
                write_timeout=cfg.write_timeout,
                max_retries=cfg.max_retries,
                max_frame=cfg.max_frame,
            )
            link.start()
            self.links[dst] = link

    def _connector(self, dst: int):
        async def connect():
            cfg = self.runtime.config
            port = self.runtime.endpoints[dst].port
            if port is None:
                raise ConnectionError(f"endpoint {dst} has no server")
            return await asyncio.open_connection(cfg.host, port)

        return connect

    def start_heartbeats(self) -> None:
        self._tasks.append(
            asyncio.get_running_loop().create_task(
                self._heartbeat_loop(), name=f"heartbeat-{self.pid}"
            )
        )

    async def close(self) -> None:
        self.killed = True
        for task in self._tasks:
            task.cancel()
        self._tasks.clear()
        for participant in self.participants.values():
            participant.cancel_side_tasks()
            # A killed process stops executing: its participants terminate
            # immediately and silently (no park event — it is crashed, not
            # degraded; the *survivors'* suspicion handles the rest).
            participant.halted = True
            participant.wake()
        for link in self.links.values():
            await link.close()
        if self.server is not None:
            self.server.close()
            try:
                await self.server.wait_closed()
            except Exception:
                pass
            self.server = None

    # ---------------------------------------------------------- heartbeats

    async def _heartbeat_loop(self) -> None:
        cfg = self.runtime.config
        self.suspicion.note_start(self.runtime.clock())
        while not self.runtime.stopping and not self.killed:
            await asyncio.sleep(cfg.heartbeat_interval)
            for link in self.links.values():
                # A plan-crashed sender's heartbeats die in the injector —
                # silence is exactly what the peers should observe.  Never
                # block the detector tick on a stuck link.
                link.send_nowait({"t": "hb"})
            self.stats.heartbeats_sent += len(self.links)
            before = self.suspicion.suspected
            after = self.suspicion.check(self.runtime.clock())
            if after != before:
                for participant in self.participants.values():
                    participant.wake()

    # ------------------------------------------------------------- inbound

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        cfg = self.runtime.config
        src: int | None = None
        try:
            while True:
                frame = await read_frame(reader, max_frame=cfg.max_frame)
                if frame is None:
                    break
                kind = frame.get("kind")
                if kind == "hello":
                    src = int(frame["src"])
                    continue
                if src is None:
                    continue  # pre-hello garbage
                self.stats.frames_received += 1
                if self.killed or not self.injector.deliverable(
                    self.pid, self.stats
                ):
                    continue  # a crashed receiver hears nothing
                now = self.runtime.clock()
                self.suspicion.heard(src, now)
                messages = frame["m"] if kind == "batch" else [frame["m"]]
                for message in messages:
                    await self._dispatch(src, message)
        except (FrameError, ConnectionError, OSError):
            pass  # the sender's link will reconnect and retransmit
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _dispatch(self, src: int, message: dict[str, Any]) -> None:
        tag = message.get("t")
        if tag == "hb":
            return
        instance = message.get("i")
        round_number = int(message.get("r", 0))
        if tag == "data":
            self.stats.messages_delivered += 1
            participant = self.participants.get(instance)
            if participant is not None:
                participant.on_data(
                    src, round_number, decode_payload(message["p"])
                )
            # Ack every data delivery, duplicates included — the sender's
            # earlier ack may have been lost (the reliable overlay's rule).
            link = self.links.get(src)
            if link is not None:
                await link.send({"t": "ack", "i": instance, "r": round_number})
        elif tag == "ack":
            participant = self.participants.get(instance)
            if participant is not None:
                participant.on_ack(src, round_number)

    # ------------------------------------------------------------ outbound

    async def broadcast_data(
        self, instance: str, round_number: int, payload: Any
    ) -> None:
        doc = {
            "t": "data", "i": instance, "r": round_number,
            "p": encode_payload(payload),
        }
        for link in self.links.values():
            await link.send(doc)

    async def send_data(
        self, dst: int, instance: str, round_number: int, payload: Any
    ) -> None:
        if dst == self.pid:
            return
        link = self.links.get(dst)
        if link is not None:
            await link.send({
                "t": "data", "i": instance, "r": round_number,
                "p": encode_payload(payload),
            })


# ---------------------------------------------------------------------------
# the runtime


class ServiceRuntime:
    """``n`` live endpoints plus the instance driver.

    Usage::

        runtime = ServiceRuntime(ServiceConfig(n=4, f=1))
        await runtime.start()
        result = await runtime.run_instance(
            InstanceSpec("c0", "consensus", inputs=(3, 1, 4, 1)))
        await runtime.stop()

    or synchronously via :func:`run_service`.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.endpoints = [
            ServiceEndpoint(self, pid) for pid in range(config.n)
        ]
        self.degradations = DegradationReport()
        # instance name → cc TraceRecorder; participants pick theirs up at
        # spawn time (see _Participant.recorder).  Populated either
        # directly or via run_instance_recorded().
        self.recorders: dict[str, Any] = {}
        self.stopping = False
        self._t0: float | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    def clock(self) -> float:
        """Seconds since :meth:`start` — the plan's time axis."""
        if self._t0 is None or self._loop is None:
            return 0.0
        return self._loop.time() - self._t0

    @property
    def stats(self) -> ServiceStats:
        """All endpoints' counters merged (the ``service.*`` rollup)."""
        total = ServiceStats()
        for endpoint in self.endpoints:
            total.merge(endpoint.stats)
        return total

    @property
    def killed(self) -> frozenset[int]:
        return frozenset(
            e.pid for e in self.endpoints if e.killed
        )

    # ----------------------------------------------------------- lifecycle

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._t0 = self._loop.time()
        for endpoint in self.endpoints:
            await endpoint.start_server()
        for endpoint in self.endpoints:
            endpoint.open_links()
        for endpoint in self.endpoints:
            endpoint.start_heartbeats()
        tracer = obs.current_tracer()
        if tracer.enabled:
            tracer.event(
                "service.start",
                n=self.config.n, f=self.config.f,
                ports=[e.port for e in self.endpoints],
            )

    async def stop(self) -> None:
        self.stopping = True
        for endpoint in self.endpoints:
            await endpoint.close()
        tracer = obs.current_tracer()
        if tracer.enabled:
            tracer.event("service.stop", **self.stats.snapshot())

    async def kill(self, pid: int) -> None:
        """Hard-kill one process mid-run: server gone, links dead, silence.

        Peers observe exactly what a real crash looks like — connections
        reset and heartbeats stop — and must recover via suspicion.
        """
        endpoint = self.endpoints[pid]
        await endpoint.close()
        tracer = obs.current_tracer()
        if tracer.enabled:
            tracer.event("service.kill", pid=pid, time=self.clock())

    async def __aenter__(self) -> "ServiceRuntime":
        await self.start()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.stop()

    # ----------------------------------------------------------- instances

    async def run_instance(self, spec: InstanceSpec) -> InstanceResult:
        """Drive one instance to termination on every live endpoint.

        Termination is structural: every round is deadline-bounded and the
        round count is finite, so the await below is as well (a generous
        backstop guards against runtime bugs, not protocol behaviour).
        """
        if len(spec.inputs) != self.config.n:
            raise ValueError(
                f"instance {spec.name!r}: {len(spec.inputs)} inputs for "
                f"n={self.config.n} processes"
            )
        protocol, max_rounds = resolve_protocol(
            spec.protocol, f=self.config.f, k=spec.k
        )
        started = self.clock()
        participants: list[_Participant] = []
        for endpoint in self.endpoints:
            if endpoint.killed:
                continue
            if spec.name in endpoint.participants:
                raise ValueError(f"instance {spec.name!r} already running")
            participant = _Participant(
                endpoint,
                spec,
                protocol.spawn(endpoint.pid, self.config.n, spec.inputs[endpoint.pid]),
                max_rounds,
            )
            endpoint.participants[spec.name] = participant
            participants.append(participant)
        backstop = (max_rounds + 2) * self.config.round_deadline * 3 + 30.0
        tasks = [
            asyncio.get_running_loop().create_task(
                p.run(), name=f"instance-{spec.name}-p{p.pid}"
            )
            for p in participants
        ]
        if tasks:
            _, pending = await asyncio.wait(tasks, timeout=backstop)
            for task in pending:  # only reachable on a runtime bug
                task.cancel()
        finished = self.clock()
        records: dict[int, ParticipantRecord] = {}
        for participant in participants:
            participant.cancel_side_tasks()
            endpoint = self.endpoints[participant.pid]
            endpoint.participants.pop(spec.name, None)
            records[participant.pid] = participant.record(
                crashed=endpoint.killed
            )
        for pid in range(self.config.n):
            if pid not in records:  # killed before the instance started
                records[pid] = ParticipantRecord(
                    pid=pid, views=[], emissions={},
                    process=_GhostProcess(), crashed=True,
                )
        ordered = [records[pid] for pid in range(self.config.n)]
        result = InstanceResult(
            spec=spec,
            n=self.config.n,
            f=self.config.f,
            records=ordered,
            degradations=self.degradations.for_instance(spec.name),
            crashed=self.killed | frozenset(
                r.pid for r in ordered if r.crashed
            ),
            started=started,
            finished=finished,
        )
        for record in result.records:
            if record.process.decided and not record.crashed:
                self.endpoints[record.pid].stats.instances_decided += 1
        tracer = obs.current_tracer()
        if tracer.enabled:
            tracer.event(
                "service.instance_done",
                instance=spec.name,
                outcome=result.outcome.value,
                latency=result.latency,
                decisions=[repr(d) for d in result.decisions],
            )
        return result

    async def run_instance_recorded(self, spec: InstanceSpec):
        """Run one instance with a cc event recorder attached.

        Returns ``(result, async_trace)`` where the trace is a
        :class:`repro.cc.trace.AsyncTrace` of every tagged send, delivery,
        boundary-crossing discard, round advance and decision the live run
        produced — ready for :func:`repro.cc.certify.certify`.
        """
        from repro.cc.trace import TraceRecorder

        recorder = TraceRecorder()
        self.recorders[spec.name] = recorder
        try:
            result = await self.run_instance(spec)
        finally:
            self.recorders.pop(spec.name, None)
        end = self.clock()
        for record in result.records:
            if record.process.decided:
                recorder.on_decide(record.pid, record.process.decision, end)
        trace = recorder.build(
            n=self.config.n,
            f=self.config.f,
            inputs=spec.inputs,
            protocol=spec.protocol,
            crashed=result.crashed,
            source="service",
        )
        return result, trace

    async def run_instances(
        self, specs: Sequence[InstanceSpec]
    ) -> list[InstanceResult]:
        """Run many instances concurrently, multiplexed over the links."""
        return list(
            await asyncio.gather(*(self.run_instance(spec) for spec in specs))
        )


def run_service(
    config: ServiceConfig, specs: Sequence[InstanceSpec]
) -> tuple[ServiceStats, DegradationReport, list[InstanceResult]]:
    """Synchronous convenience: start, run ``specs``, stop, report."""

    async def _run() -> tuple[ServiceStats, DegradationReport, list[InstanceResult]]:
        runtime = ServiceRuntime(config)
        await runtime.start()
        try:
            results = await runtime.run_instances(specs)
        finally:
            await runtime.stop()
        return runtime.stats, runtime.degradations, results

    return asyncio.run(_run())
