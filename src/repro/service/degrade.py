"""Graceful degradation: structured events instead of hangs.

When a live round misses its deadline the runtime never blocks on the
missing peers.  It emits a :class:`DegradationEvent` — the live analogue of
the simulator's :class:`~repro.core.audit.StallReport` — and takes one of
two actions:

- ``"advance"`` — at least ``n − f`` round messages arrived, so the round
  closes with ``D(i, r)`` = the unheard senders, exactly the discard/advance
  rule of the simulated overlay; the protocol keeps its RRFD guarantees.
- ``"park"`` — fewer than ``n − f`` arrived; advancing would break the
  ``|D| ≤ f`` predicate, so the instance is *parked*: terminated
  undecided with its partial views preserved for audit.  Parking is the
  honest outcome the model prescribes when more than ``f`` processes are
  effectively silent — the guarantee is conditional on the fault budget.

Every event also lands on the ambient tracer as ``service.degraded`` /
``service.parked`` so a collected trace shows exactly where and why a run
degraded (EXPERIMENTS.md § E23 walks through reading one).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DegradationEvent", "DegradationReport"]


@dataclass(frozen=True)
class DegradationEvent:
    """One round that missed its deadline on one process."""

    instance: str
    pid: int
    round: int
    action: str  # "advance" | "park"
    deadline: float  # the per-round deadline that expired (seconds)
    heard: frozenset[int]  # senders heard for the round when it expired
    missing: frozenset[int]  # S − heard at the deadline
    suspected: frozenset[int]  # heartbeat suspicion at the deadline
    time: float  # service-clock time of the event

    def __post_init__(self) -> None:
        if self.action not in ("advance", "park"):
            raise ValueError(
                f"action must be 'advance' or 'park', got {self.action!r}"
            )

    def to_doc(self) -> dict:
        """JSON-ready form (trace / artifact embedding)."""
        return {
            "instance": self.instance,
            "pid": self.pid,
            "round": self.round,
            "action": self.action,
            "deadline": self.deadline,
            "heard": sorted(self.heard),
            "missing": sorted(self.missing),
            "suspected": sorted(self.suspected),
            "time": self.time,
        }


@dataclass
class DegradationReport:
    """All degradation events of a run, with the summary views the CLI and
    bench artifacts need."""

    events: list[DegradationEvent] = field(default_factory=list)

    def add(self, event: DegradationEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def degraded_rounds(self) -> int:
        return sum(1 for e in self.events if e.action == "advance")

    @property
    def parks(self) -> int:
        return sum(1 for e in self.events if e.action == "park")

    def for_instance(self, instance: str) -> list[DegradationEvent]:
        return [e for e in self.events if e.instance == instance]

    def summary(self) -> dict:
        return {
            "events": len(self.events),
            "degraded_rounds": self.degraded_rounds,
            "parks": self.parks,
            "instances": sorted({e.instance for e in self.events}),
        }

    def to_doc(self) -> list[dict]:
        return [e.to_doc() for e in self.events]
