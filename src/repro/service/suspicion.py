"""Heartbeat-driven suspicion for the live runtime.

:class:`SuspicionMonitor` is the live counterpart of the simulated
:class:`~repro.substrates.messaging.heartbeat.HeartbeatDetectorNode`: per-peer
adaptive timeouts with the Chandra–Toueg bump — a heartbeat from a suspected
peer clears the suspicion *and* permanently lengthens that peer's timeout,
so each false suspicion is made once, not repeatedly.  On top of the
simulated construction it adds **hysteresis**: a peer must miss
``hysteresis`` consecutive checks before being suspected, so one scheduling
hiccup on a loaded event loop does not flap the detector.

The monitor is pure state — the runtime feeds it ``heard(peer, now)`` on
every inbound frame and drives ``check(now)`` from its ticker.  That keeps
it unit-testable with a hand-rolled clock, no sockets or sleeps involved.
The output read by each round is :attr:`suspected`, which becomes the
``D(i, r)`` candidates when a round degrades (see
:mod:`repro.service.runtime`).
"""

from __future__ import annotations

from repro import obs
from repro.service.transport import ServiceStats

__all__ = ["SuspicionMonitor"]


class SuspicionMonitor:
    """Adaptive-timeout heartbeat suspicion with hysteresis for one process."""

    def __init__(
        self,
        pid: int,
        peers: list[int],
        *,
        initial_timeout: float = 0.5,
        timeout_bump: float = 0.5,
        hysteresis: int = 2,
        stats: ServiceStats | None = None,
    ) -> None:
        if initial_timeout <= 0 or timeout_bump < 0:
            raise ValueError(
                f"need initial_timeout > 0 and timeout_bump ≥ 0, got "
                f"{initial_timeout}, {timeout_bump}"
            )
        if hysteresis < 1:
            raise ValueError(f"hysteresis must be ≥ 1, got {hysteresis}")
        self.pid = pid
        self.peers = [j for j in peers if j != pid]
        self.timeouts = {j: initial_timeout for j in self.peers}
        self.timeout_bump = timeout_bump
        self.hysteresis = hysteresis
        self.stats = stats or ServiceStats()
        self.last_heard = {j: 0.0 for j in self.peers}
        self.misses = {j: 0 for j in self.peers}
        self._suspected: set[int] = set()
        #: ``(time, frozen suspicion set)`` after every change — the same
        #: shape as the simulated detector's ``suspicion_log``.
        self.suspicion_log: list[tuple[float, frozenset[int]]] = []

    @property
    def suspected(self) -> frozenset[int]:
        return frozenset(self._suspected)

    def note_start(self, now: float) -> None:
        """Reset the silence baseline; call when the transport comes up."""
        for j in self.peers:
            self.last_heard[j] = now
            self.misses[j] = 0

    def heard(self, peer: int, now: float) -> None:
        """Any inbound frame from ``peer`` counts as a sign of life."""
        if peer not in self.last_heard:
            return
        self.last_heard[peer] = now
        self.misses[peer] = 0
        if peer in self._suspected:
            # False suspicion: forgive, and adapt so the same peer does not
            # get falsely suspected at this timeout again (Chandra–Toueg).
            self._suspected.discard(peer)
            self.timeouts[peer] += self.timeout_bump
            self.stats.suspicions_cleared += 1
            self.stats.timeout_bumps += 1
            self.suspicion_log.append((now, self.suspected))
            tracer = obs.current_tracer()
            if tracer.enabled:
                tracer.event(
                    "service.suspicion_cleared",
                    pid=self.pid, peer=peer,
                    new_timeout=self.timeouts[peer],
                )

    def check(self, now: float) -> frozenset[int]:
        """One detector tick; returns the (possibly updated) suspicion set.

        A silent peer accrues one miss per tick; only ``hysteresis``
        consecutive misses raise the suspicion.
        """
        changed = False
        for j in self.peers:
            if j in self._suspected:
                continue
            if now - self.last_heard[j] > self.timeouts[j]:
                self.misses[j] += 1
                if self.misses[j] >= self.hysteresis:
                    self._suspected.add(j)
                    self.stats.suspicions_raised += 1
                    changed = True
                    tracer = obs.current_tracer()
                    if tracer.enabled:
                        tracer.event(
                            "service.suspicion_raised",
                            pid=self.pid, peer=j,
                            silent_for=now - self.last_heard[j],
                            timeout=self.timeouts[j],
                        )
            else:
                self.misses[j] = 0
        if changed:
            self.suspicion_log.append((now, self.suspected))
        return self.suspected
