"""``repro.service`` — the live asyncio protocol runtime.

Everything else in the repository runs on the deterministic
:class:`~repro.substrates.events.simulator.EventSimulator`.  This package is
the first layer that handles *real traffic*: it runs the protocol catalog
(consensus, k-set, adopt-commit) over real localhost TCP sockets between
asyncio tasks, with

- length-prefixed JSON framing, per-message write timeouts, retry with
  capped exponential backoff **plus jitter**, and connection
  re-establishment on drop (:mod:`repro.service.transport`);
- heartbeat-driven suspicion with adaptive (Chandra–Toueg) timeouts and
  hysteresis feeding each round's ``D(i, r)``
  (:mod:`repro.service.suspicion`);
- round batching, bounded send queues with backpressure, and graceful
  degradation — a round that cannot complete within its deadline emits a
  structured :class:`~repro.service.degrade.DegradationEvent` and either
  advances with the suspected set or parks the instance, never hangs
  (:mod:`repro.service.runtime`, :mod:`repro.service.degrade`);
- transport-level fault injection reusing
  :class:`~repro.substrates.messaging.chaos.FaultPlan`
  (drop/dup/delay/partition/crash+recovery) against live connections;
- a load generator driving hundreds of concurrent instances
  (:mod:`repro.service.loadgen`).

Completed instances project onto :class:`~repro.core.types.ExecutionTrace`
via the existing :meth:`~repro.substrates.messaging.rounds.OverlayResult.to_trace`
path, so :mod:`repro.core.audit` certifies communication closure and the
RRFD guarantees (``S∪D=S``, ``|D|≤f``) on *live* runs exactly as it does on
simulated ones.  Damian–Drăgoi–Widder's reduction (PAPERS.md) is the
justification: an async runtime whose executions project onto synchronized
rounds stays checkable against the same round-by-round predicates.
"""

from repro.service.degrade import DegradationEvent, DegradationReport
from repro.service.loadgen import (
    LoadResult,
    load_cell,
    named_plan,
    run_load,
    service_protocol,
)
from repro.service.runtime import (
    InstanceOutcome,
    InstanceResult,
    InstanceSpec,
    ServiceConfig,
    ServiceRuntime,
    audit_instance,
    run_service,
)
from repro.service.suspicion import SuspicionMonitor
from repro.service.transport import (
    Backoff,
    FaultInjector,
    ServiceStats,
    decode_payload,
    encode_frame,
    encode_payload,
    read_frame,
)

__all__ = [
    "Backoff",
    "DegradationEvent",
    "DegradationReport",
    "FaultInjector",
    "InstanceOutcome",
    "InstanceResult",
    "InstanceSpec",
    "LoadResult",
    "ServiceConfig",
    "ServiceRuntime",
    "ServiceStats",
    "SuspicionMonitor",
    "audit_instance",
    "decode_payload",
    "encode_frame",
    "encode_payload",
    "load_cell",
    "named_plan",
    "read_frame",
    "run_load",
    "run_service",
    "service_protocol",
]
