"""Load generation for the live service: many instances, one runtime.

:func:`run_load` drives hundreds of concurrent protocol instances over a
single :class:`~repro.service.runtime.ServiceRuntime` under a named chaos
plan, audits every completed instance through the live-trace path, and
reduces the run to throughput/latency/robustness numbers.  It backs

- the ``python -m repro load`` CLI subcommand,
- the E23 benchmark (``benchmarks/bench_e23_service.py``) via
  :func:`load_cell`, the pure harness cell function, and
- the CI ``service-smoke`` job, which asserts zero safety violations on a
  drop+partition plan.

The named plans interpret the :class:`FaultPlan` time axis in *live
seconds* on the runtime clock — windows are placed in the first couple of
seconds, where a short load run actually lives.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any

from repro.core.audit import AuditReport
from repro.service.runtime import (
    InstanceOutcome,
    InstanceResult,
    InstanceSpec,
    ServiceConfig,
    ServiceRuntime,
    audit_instance,
    resolve_protocol,
)
from repro.service.degrade import DegradationReport
from repro.service.transport import ServiceStats
from repro.substrates.messaging.chaos import (
    CrashWindow,
    FaultPlan,
    LinkFaults,
    Partition,
)
from repro.util.rng import derive_seed, make_rng

__all__ = [
    "PLAN_NAMES",
    "named_plan",
    "service_protocol",
    "make_specs",
    "LoadResult",
    "run_load",
    "load_cell",
]

#: Protocols the generator cycles through under ``protocol="mix"``.
MIX = ("consensus", "kset", "adopt-commit")

PLAN_NAMES = ("none", "drop", "partition", "ci", "chaos")


def service_protocol(name: str, *, f: int, k: int = 1):
    """Public alias of the runtime's catalog mapping (protocol, max_rounds)."""
    return resolve_protocol(name, f=f, k=k)


def named_plan(name: str, n: int) -> FaultPlan:
    """A preset :class:`FaultPlan` scaled to ``n`` live processes.

    - ``"none"`` — clean network.
    - ``"drop"`` — 10% loss + 5% duplication on every link.
    - ``"partition"`` — one timed split (low pids vs high pids) during
      ``[0.5, 1.5)`` seconds.
    - ``"ci"`` — drop + the timed partition (the service-smoke plan).
    - ``"chaos"`` — drop + dup + jitter + the timed partition + one crash
      window on process 0 (down at 0.3 s, back at 1.2 s): the acceptance
      plan — every fault class at once.
    """
    lossy = LinkFaults(drop_prob=0.1, dup_prob=0.05)
    low = frozenset(range(n // 2))
    high = frozenset(range(n // 2, n))
    split = Partition(start=0.5, end=1.5, groups=(low, high))
    if name == "none":
        return FaultPlan()
    if name == "drop":
        return FaultPlan(default=lossy)
    if name == "partition":
        return FaultPlan(partitions=[split])
    if name == "ci":
        return FaultPlan(default=lossy, partitions=[split])
    if name == "chaos":
        return FaultPlan(
            default=LinkFaults(
                drop_prob=0.1, dup_prob=0.05, jitter=0.02,
                spike_prob=0.02, spike=0.05,
            ),
            partitions=[split],
            crashes={0: [CrashWindow(down=0.3, up=1.2)]},
        )
    raise ValueError(f"unknown plan {name!r} (expected one of {PLAN_NAMES})")


def make_specs(
    count: int, n: int, protocol: str, k: int, seed: int
) -> list[InstanceSpec]:
    """``count`` seeded instance specs; ``protocol="mix"`` cycles the catalog."""
    specs = []
    for index in range(count):
        name = protocol if protocol != "mix" else MIX[index % len(MIX)]
        rng = make_rng(derive_seed("service-load-inputs", seed, index))
        inputs = tuple(rng.randrange(10) for _ in range(n))
        specs.append(
            InstanceSpec(f"i{index:04d}-{name}", name, inputs, k=k)
        )
    return specs


@dataclass
class LoadResult:
    """One load-generation run, fully audited."""

    n: int
    f: int
    plan: str
    protocol: str
    results: list[InstanceResult]
    audits: list[AuditReport]
    stats: ServiceStats
    degradations: DegradationReport
    duration: float

    def count(self, outcome: InstanceOutcome) -> int:
        return sum(1 for r in self.results if r.outcome is outcome)

    @property
    def violations(self) -> int:
        """Safety violations found by the live-trace audit — must be 0."""
        return sum(len(a.violations) for a in self.audits)

    @property
    def throughput(self) -> float:
        """Instances terminated per second of wall time."""
        return len(self.results) / self.duration if self.duration > 0 else 0.0

    def latency_quantile(self, q: float) -> float:
        latencies = sorted(r.latency for r in self.results)
        if not latencies:
            return 0.0
        index = min(len(latencies) - 1, int(q * len(latencies)))
        return latencies[index]

    def summary(self) -> dict[str, Any]:
        return {
            "n": self.n,
            "f": self.f,
            "plan": self.plan,
            "protocol": self.protocol,
            "instances": len(self.results),
            "decided": self.count(InstanceOutcome.DECIDED),
            "degraded": self.count(InstanceOutcome.DEGRADED),
            "parked": self.count(InstanceOutcome.PARKED),
            "violations": self.violations,
            "throughput": self.throughput,
            "latency_p50": self.latency_quantile(0.50),
            "latency_p95": self.latency_quantile(0.95),
            "duration": self.duration,
            "degradation_events": len(self.degradations),
            "retries": self.stats.retries,
            "retransmissions": self.stats.retransmissions,
            "reconnects": self.stats.reconnects,
            "degraded_rounds": self.stats.degraded_rounds,
            "queue_high_water": self.stats.queue_high_water,
        }


async def run_load_async(
    *,
    n: int = 4,
    f: int = 1,
    instances: int = 100,
    protocol: str = "mix",
    plan: str = "none",
    k: int = 1,
    seed: int = 0,
    round_deadline: float = 2.0,
    initial_timeout: float = 0.5,
    heartbeat_interval: float = 0.05,
) -> LoadResult:
    """Run ``instances`` concurrent instances under ``plan`` and audit all."""
    config = ServiceConfig(
        n=n,
        f=f,
        plan=named_plan(plan, n),
        seed=seed,
        round_deadline=round_deadline,
        initial_timeout=initial_timeout,
        heartbeat_interval=heartbeat_interval,
    )
    specs = make_specs(instances, n, protocol, k, seed)
    runtime = ServiceRuntime(config)
    await runtime.start()
    try:
        started = runtime.clock()
        results = await runtime.run_instances(specs)
        duration = runtime.clock() - started
    finally:
        await runtime.stop()
    return LoadResult(
        n=n,
        f=f,
        plan=plan,
        protocol=protocol,
        results=results,
        audits=[audit_instance(r) for r in results],
        stats=runtime.stats,
        degradations=runtime.degradations,
        duration=duration,
    )


def run_load(**kwargs: Any) -> LoadResult:
    """Synchronous wrapper around :func:`run_load_async`."""
    return asyncio.run(run_load_async(**kwargs))


def load_cell(ctx) -> dict:
    """Harness cell for E23: one seeded load run reduced to its metrics.

    Pure and top-level (picklable), per the harness's parallel-safety
    contract; the sample's seed comes from ``ctx.seed`` so results are
    independent of worker scheduling.  Latency and throughput are
    wall-clock observations and land in the artifact's environmental half.
    """
    result = run_load(
        n=ctx["n"],
        f=ctx["f"],
        instances=ctx["instances"],
        protocol=ctx["protocol"],
        plan=ctx["plan"],
        seed=ctx.seed,
    )
    summary = result.summary()
    return {
        "terminated": summary["decided"] + summary["degraded"] + summary["parked"],
        "decided": summary["decided"],
        "degraded": summary["degraded"],
        "parked": summary["parked"],
        "violations": summary["violations"],
        "throughput": summary["throughput"],
        "latency_p50": summary["latency_p50"],
        "latency_p95": summary["latency_p95"],
        "degraded_rounds": summary["degraded_rounds"],
        "retransmissions": summary["retransmissions"],
    }
