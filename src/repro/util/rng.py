"""Deterministic random-number helpers.

Every stochastic component in the library (adversaries, schedulers, workload
generators) takes an explicit :class:`random.Random` instance rather than
using the module-level global.  This keeps executions reproducible: a seed
fully determines an execution, which is essential both for debugging
distributed runs and for the paper's experiments, where a "run" is a sampled
adversary schedule.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Iterator

__all__ = ["make_rng", "spawn_rngs", "derive_seed", "sample_seed"]


def make_rng(seed: int | None = None) -> random.Random:
    """Return a fresh :class:`random.Random` seeded with ``seed``.

    ``None`` produces an OS-seeded generator; experiments should always pass
    an explicit integer seed.
    """
    return random.Random(seed)


def spawn_rngs(parent: random.Random, count: int) -> list[random.Random]:
    """Derive ``count`` independent child generators from ``parent``.

    Children are seeded from the parent's stream, so a single top-level seed
    reproducibly determines every per-process / per-component generator
    without the components sharing (and thus racing on) one stream.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [random.Random(parent.getrandbits(64)) for _ in range(count)]


def stream(parent: random.Random) -> Iterator[random.Random]:
    """Yield an unbounded sequence of child generators derived from ``parent``."""
    while True:
        yield random.Random(parent.getrandbits(64))


def derive_seed(*parts: object) -> int:
    """Hash ``parts`` into a stable 64-bit seed.

    The derivation is pure arithmetic over the string forms of ``parts`` —
    no process state, no global RNG — so the same parts give the same seed
    in every process.  This is what makes the experiment harness's results
    independent of how samples are scheduled across worker processes: a
    sample's randomness is a function of *what* it is, never of *where* or
    *when* it runs.
    """
    text = "\x1f".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def sample_seed(experiment: str, cell_id: str, index: int) -> int:
    """The canonical per-sample seed: a function of (experiment, cell, index).

    Every refactored ``run_cell`` receives its RNG seeded this way, which is
    the parallel-safety contract: bit-identical results for ``--workers 1``
    and ``--workers N``.
    """
    return derive_seed("rrfd-sample", experiment, cell_id, index)
