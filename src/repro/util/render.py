"""ASCII rendering of executions — make a trace legible at a glance.

Round suspicion matrices and decision summaries as fixed-width text, used
by the CLI and the examples.  The convention throughout: one block of
``n`` characters per process row, ``x`` at column ``j`` meaning
"this process suspects ``j``", ``.`` meaning trusted.

Above :data:`SUMMARY_THRESHOLD` processes the x/. matrix stops being
legible (and its output quadratic), so rendering switches to a summary
form: only processes that suspect someone are listed, each as a popcount
plus its first few members, with row caps keeping the output bounded no
matter how large ``n`` grows (the E14 bench grids run into the
thousands).
"""

from __future__ import annotations

from repro.core.types import DRound, ExecutionTrace

__all__ = [
    "SUMMARY_THRESHOLD",
    "render_d_round",
    "render_trace",
    "render_suspicion_history",
]

#: Largest ``n`` rendered as a full x/. matrix; above it, summaries.
SUMMARY_THRESHOLD = 16

#: Set members shown per summarized suspicion set.
_MEMBERS_SHOWN = 8

#: Non-empty rows shown per summarized round.
_ROWS_SHOWN = 16


def _summarize_set(suspected: frozenset[int]) -> str:
    members = sorted(suspected)
    head = ",".join(str(m) for m in members[:_MEMBERS_SHOWN])
    tail = ",…" if len(members) > _MEMBERS_SHOWN else ""
    return f"|D|={len(members)} {{{head}{tail}}}"


def _summarize_d_round(d_round: DRound) -> list[str]:
    n = len(d_round)
    width = len(f"p{n - 1}")
    rows = [
        (pid, suspected)
        for pid, suspected in enumerate(d_round)
        if suspected
    ]
    lines = [
        f"{f'p{pid}':<{width}} {_summarize_set(suspected)}"
        for pid, suspected in rows[:_ROWS_SHOWN]
    ]
    if len(rows) > _ROWS_SHOWN:
        lines.append(f"… {len(rows) - _ROWS_SHOWN} more suspecting rows")
    quiet = n - len(rows)
    if quiet:
        lines.append(f"({quiet}/{n} processes suspect nobody)")
    return lines


def render_d_round(d_round: DRound) -> list[str]:
    """One line per process: ``p0 x..`` means p0 suspects process 0 only.

    Above :data:`SUMMARY_THRESHOLD` processes the matrix form is replaced
    by per-process summaries (popcount + first members) of the non-empty
    rows only, capped so the output stays bounded at any ``n``.
    """
    n = len(d_round)
    if n > SUMMARY_THRESHOLD:
        return _summarize_d_round(d_round)
    width = len(f"p{n - 1}")
    return [
        f"{f'p{pid}':<{width}} "
        + "".join("x" if j in suspected else "." for j in range(n))
        for pid, suspected in enumerate(d_round)
    ]


def render_suspicion_history(history: tuple[DRound, ...]) -> str:
    """All rounds side by side, one process per line.

    Above :data:`SUMMARY_THRESHOLD` processes, rounds are rendered as
    sequential summarized blocks instead of side-by-side matrices.
    """
    if not history:
        return "(no rounds)"
    n = len(history[0])
    if n > SUMMARY_THRESHOLD:
        lines = []
        for r, d_round in enumerate(history, start=1):
            lines.append(f"r{r}:")
            lines.extend(f"  {line}" for line in _summarize_d_round(d_round))
        return "\n".join(lines)
    width = len(f"p{n - 1}")
    header = (
        " " * (width + 1)
        + " ".join(f"r{r + 1:<{max(n - 2, 1)}}" for r in range(len(history)))
    )
    lines = [header]
    for pid in range(n):
        blocks = [
            "".join("x" if j in d_round[pid] else "." for j in range(n))
            for d_round in history
        ]
        lines.append(f"{f'p{pid}':<{width}} " + " ".join(blocks))
    return "\n".join(lines)


def render_trace(trace: ExecutionTrace) -> str:
    """A compact, human-readable account of one execution."""
    parts = [
        f"n={trace.n}, rounds={trace.num_rounds}",
        f"inputs:    {list(trace.inputs)}",
        "",
        "suspicions (row = process, column = suspected id, block = round):",
        render_suspicion_history(trace.d_history),
        "",
    ]
    decided = [
        f"p{pid}→{value!r}@r{trace.decided_at[pid]}"
        for pid, value in enumerate(trace.decisions)
        if value is not None
    ]
    undecided = [f"p{pid}" for pid, v in enumerate(trace.decisions) if v is None]
    parts.append("decisions: " + (", ".join(decided) if decided else "(none)"))
    if undecided:
        parts.append("undecided: " + ", ".join(undecided))
    parts.append(f"distinct:  {len(trace.decided_values)}")
    return "\n".join(parts)
