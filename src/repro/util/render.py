"""ASCII rendering of executions — make a trace legible at a glance.

Round suspicion matrices and decision summaries as fixed-width text, used
by the CLI and the examples.  The convention throughout: one block of
``n`` characters per process row, ``x`` at column ``j`` meaning
"this process suspects ``j``", ``.`` meaning trusted.
"""

from __future__ import annotations

from repro.core.types import DRound, ExecutionTrace

__all__ = ["render_d_round", "render_trace", "render_suspicion_history"]


def render_d_round(d_round: DRound) -> list[str]:
    """One line per process: ``p0 x..`` means p0 suspects process 0 only."""
    n = len(d_round)
    width = len(f"p{n - 1}")
    return [
        f"{f'p{pid}':<{width}} "
        + "".join("x" if j in suspected else "." for j in range(n))
        for pid, suspected in enumerate(d_round)
    ]


def render_suspicion_history(history: tuple[DRound, ...]) -> str:
    """All rounds side by side, one process per line."""
    if not history:
        return "(no rounds)"
    n = len(history[0])
    width = len(f"p{n - 1}")
    header = (
        " " * (width + 1)
        + " ".join(f"r{r + 1:<{max(n - 2, 1)}}" for r in range(len(history)))
    )
    lines = [header]
    for pid in range(n):
        blocks = [
            "".join("x" if j in d_round[pid] else "." for j in range(n))
            for d_round in history
        ]
        lines.append(f"{f'p{pid}':<{width}} " + " ".join(blocks))
    return "\n".join(lines)


def render_trace(trace: ExecutionTrace) -> str:
    """A compact, human-readable account of one execution."""
    parts = [
        f"n={trace.n}, rounds={trace.num_rounds}",
        f"inputs:    {list(trace.inputs)}",
        "",
        "suspicions (row = process, column = suspected id, block = round):",
        render_suspicion_history(trace.d_history),
        "",
    ]
    decided = [
        f"p{pid}→{value!r}@r{trace.decided_at[pid]}"
        for pid, value in enumerate(trace.decisions)
        if value is not None
    ]
    undecided = [f"p{pid}" for pid, v in enumerate(trace.decisions) if v is None]
    parts.append("decisions: " + (", ".join(decided) if decided else "(none)"))
    if undecided:
        parts.append("undecided: " + ", ".join(undecided))
    parts.append(f"distinct:  {len(trace.decided_values)}")
    return "\n".join(parts)
