"""Integer-bitmask kernel for RRFD suspicion sets and packed rounds.

The paper's whole state space is families of subsets of ``S = {0..n-1}``:
per-round suspicion sets ``D(i, r)``.  Representing each subset as a
Python ``int`` (bit ``j`` set ⇔ ``j ∈ D``) turns every predicate clause
into one or two machine-word operations — membership is a shift, union is
``|``, intersection ``&``, subset ``(a & ~b) == 0``, cardinality
``int.bit_count`` — where the ``frozenset`` path pays a hash-table walk
per element.

Two layers live here:

* **Mask primitives** — pure functions on a single subset mask.
* **Packed rounds** — a whole ``DRound`` ``(D_0, .., D_{n-1})`` as one int
  of ``n*n`` bits: bit ``i*n + j`` set ⇔ ``j ∈ D(i)``.  A packed
  ``DHistory`` is then a tuple of ints, which hashes and compares as a
  flat word sequence — the representation the exploration engine uses for
  memo keys, symmetry orbits and stack frames.

The bridge to ``frozenset`` land is **lossless and interned** per ``n``
(:class:`BitsetDomain`): unpacking the same packed round twice returns the
*same* ``DRound`` tuple object, so downstream identity tricks (shared
trace objects, memo-by-identity) keep working and equality checks stay
cheap.

Enumeration order contract: :meth:`BitsetDomain.masks_by_rank` yields
masks in exactly the order of :func:`repro.util.sets.all_subsets` (size
ascending, then combination order), so packed enumeration of round
families visits the identical sequence as
:func:`repro.util.sets.all_subset_families` — the property the
differential tests against the set-based oracle rest on.
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import Iterable, Iterator

__all__ = [
    "bits_of",
    "iter_bits",
    "mask_of",
    "popcount",
    "set_of",
    "BitsetDomain",
    "domain",
    "SPLIT_THRESHOLD",
    "MAX_PERM_TABLE_N",
]

# Row count past which round_masks / pack_masks switch from the direct
# per-row shift loop (O(n³) bit traffic on an n·n-bit int) to recursive
# halving (O(n² log n)).  Below this the loop's smaller constant wins.
SPLIT_THRESHOLD = 64

# perm_mask_map builds a 2^n-entry table per permutation and symmetry
# reduction may request up to n! of them; past this it refuses loudly.
MAX_PERM_TABLE_N = 16


def mask_of(items: Iterable[int]) -> int:
    """Pack an iterable of process ids into a bitmask."""
    mask = 0
    for item in items:
        mask |= 1 << item
    return mask


def set_of(mask: int) -> frozenset[int]:
    """Unpack a bitmask into a frozenset of process ids."""
    return frozenset(iter_bits(mask))


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bits_of(mask: int) -> tuple[int, ...]:
    """The set bit positions of ``mask`` as an ascending tuple."""
    return tuple(iter_bits(mask))


def popcount(mask: int) -> int:
    """Number of set bits (``|D|`` for a suspicion-set mask)."""
    return mask.bit_count()


class BitsetDomain:
    """Per-``n`` packed-round workspace: masks, interning, permutations.

    One instance exists per ``n`` (via :func:`domain`); everything heavy —
    the interned ``frozenset`` table, unpacked-round cache, enumeration
    mask lists, permutation image tables — is cached on it, so hot loops
    pay dict lookups instead of object construction.
    """

    __slots__ = (
        "n",
        "full",
        "round_bits",
        "full_round",
        "_sets",
        "_set_masks",
        "_bit_tuples",
        "_rounds",
        "_ranked",
        "_perm_maps",
    )

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"domain needs n >= 1, got {n}")
        self.n = n
        self.full = (1 << n) - 1
        self.round_bits = n * n
        self.full_round = (1 << (n * n)) - 1
        self._sets: dict[int, frozenset[int]] = {}
        self._set_masks: dict[frozenset[int], int] = {}
        self._bit_tuples: dict[int, tuple[int, ...]] = {}
        self._rounds: dict[int, tuple[frozenset[int], ...]] = {}
        self._ranked: dict[int | None, tuple[int, ...]] = {}
        self._perm_maps: dict[tuple[int, ...], list[int]] = {}

    # -- single-set bridging -------------------------------------------------

    def to_set(self, mask: int) -> frozenset[int]:
        """Interned ``frozenset`` for a single suspicion-set mask."""
        cached = self._sets.get(mask)
        if cached is None:
            cached = self._sets[mask] = set_of(mask)
            self._set_masks[cached] = mask
        return cached

    def pack_set(self, items: frozenset[int]) -> int:
        """Mask of one suspicion set, memoized by the set itself.

        The reverse direction of :meth:`to_set`: hot loops that receive
        ``frozenset``s (the executor packing adversary-chosen rounds) pay
        one dict probe per set instead of an element walk.  Only distinct
        sets actually seen are cached, so the table stays small.
        """
        mask = self._set_masks.get(items)
        if mask is None:
            mask = mask_of(items)
            self._set_masks[items] = mask
            self._sets.setdefault(mask, items)
        return mask

    def set_bits(self, mask: int) -> tuple[int, ...]:
        """Ascending bit positions of ``mask``, memoized per mask."""
        cached = self._bit_tuples.get(mask)
        if cached is None:
            cached = self._bit_tuples[mask] = bits_of(mask)
        return cached

    # -- packed rounds -------------------------------------------------------

    def pack_round(self, d_round: Iterable[Iterable[int]]) -> int:
        """Pack ``(D_0, .., D_{n-1})`` into one ``n*n``-bit int."""
        n = self.n
        packed = 0
        for pid, suspected in enumerate(d_round):
            packed |= mask_of(suspected) << (pid * n)
        return packed

    def unpack_round(self, rint: int) -> tuple[frozenset[int], ...]:
        """Interned ``DRound`` for a packed round int (lossless inverse)."""
        cached = self._rounds.get(rint)
        if cached is None:
            cached = self._rounds[rint] = tuple(
                self.to_set(mask) for mask in self.round_masks(rint)
            )
        return cached

    def round_masks(self, rint: int) -> tuple[int, ...]:
        """Split a packed round into its ``n`` per-process masks.

        Small ``n`` uses the direct per-row shift loop.  Past
        ``SPLIT_THRESHOLD`` rows that loop moves the *whole* ``n·n``-bit
        int once per row — O(n³) bit traffic — so large rounds split by
        recursive halving instead: each level moves every bit once, for
        O(n² log n) total.
        """
        n = self.n
        if n <= SPLIT_THRESHOLD:
            full = self.full
            return tuple((rint >> (pid * n)) & full for pid in range(n))
        out: list[int] = []
        self._split_rows(rint, n, out)
        return tuple(out)

    def _split_rows(self, rint: int, rows: int, out: list[int]) -> None:
        # Halve the row block with one shift + one mask per level; a leaf
        # chunk is already a single bare row mask (< 2**n).
        if rows == 1:
            out.append(rint)
            return
        half = rows >> 1
        cut = half * self.n
        self._split_rows(rint & ((1 << cut) - 1), half, out)
        self._split_rows(rint >> cut, rows - half, out)

    def pack_masks(self, masks: Iterable[int]) -> int:
        """Combine per-process masks back into one packed round int.

        The inverse of :meth:`round_masks`, with the same asymptotics fix:
        large ``n`` joins rows pairwise (zero-padded to a power of two —
        zero rows OR in nothing) so each level moves every bit once,
        instead of accumulating into an ever-growing giant int.
        """
        n = self.n
        if n <= SPLIT_THRESHOLD:
            packed = 0
            for pid, mask in enumerate(masks):
                packed |= mask << (pid * n)
            return packed
        items = list(masks)
        if not items:
            return 0
        width = n
        while len(items) > 1:
            if len(items) & 1:
                items.append(0)
            items = [
                items[i] | (items[i + 1] << width)
                for i in range(0, len(items), 2)
            ]
            width <<= 1
        return items[0]

    def pack_history(self, history: Iterable[Iterable[Iterable[int]]]) -> tuple[int, ...]:
        """Pack a ``DHistory`` into a tuple of round ints."""
        return tuple(self.pack_round(d_round) for d_round in history)

    def unpack_history(self, packed: Iterable[int]) -> tuple[tuple[frozenset[int], ...], ...]:
        """Unpack a tuple of round ints back into an interned ``DHistory``."""
        return tuple(self.unpack_round(rint) for rint in packed)

    # -- aggregates over packed rounds --------------------------------------

    def round_union(self, rint: int) -> int:
        """``⋃_i D(i)`` of a packed round, as a mask."""
        full = self.full
        n = self.n
        union = 0
        while rint:
            union |= rint & full
            rint >>= n
        return union

    def round_intersection(self, rint: int) -> int:
        """``⋂_i D(i)`` of a packed round, as a mask."""
        full = self.full
        n = self.n
        inter = rint & full
        for _ in range(self.n - 1):
            rint >>= n
            inter &= rint & full
        return inter

    def complement_round(self, rint: int) -> int:
        """Lane-wise complement of a packed round: each ``D(i) ↦ S − D(i)``.

        Because every lane is exactly ``n`` bits wide, complementing all
        ``n·n`` bits at once complements every lane against ``S`` — this is
        the packed form of the Heard-Of bridge ``HO(i, r) = S − D(i, r)``
        (:mod:`repro.ho.model`), and it is an involution.
        """
        return rint ^ self.full_round

    # -- enumeration order ---------------------------------------------------

    def masks_by_rank(self, max_size: int | None = None) -> tuple[int, ...]:
        """Subset masks in ``all_subsets`` order (size asc, combo order).

        This order is the compatibility contract with the set-based
        enumerator: packed round enumeration iterates per-process masks in
        this sequence, outermost process varying slowest, exactly like
        ``all_subset_families``.
        """
        key = None if max_size is None or max_size >= self.n else max_size
        cached = self._ranked.get(key)
        if cached is None:
            top = self.n if key is None else key
            cached = self._ranked[key] = tuple(
                mask_of(combo)
                for size in range(top + 1)
                for combo in itertools.combinations(range(self.n), size)
            )
        return cached

    # -- permutations (symmetry reduction) -----------------------------------

    def perm_mask_map(self, perm: tuple[int, ...]) -> list[int]:
        """``map[mask]`` = image of ``mask`` under process renaming ``perm``.

        ``perm[i]`` is the new name of process ``i``.  The table has
        ``2^n`` entries, built lazily on first use and interned per
        permutation tuple, turning orbit canonicalization into array
        lookups.  Symmetry reduction can request up to ``n!`` of these, so
        past ``MAX_PERM_TABLE_N`` construction refuses loudly instead of
        exhausting memory — use :meth:`permute_round`, whose large-``n``
        path permutes rows directly without any table.
        """
        n = self.n
        if n > MAX_PERM_TABLE_N:
            raise ValueError(
                f"perm_mask_map: n={n} needs a {1 << n}-entry table per "
                f"permutation (and symmetry reduction may request up to "
                f"n! of them); refusing beyond n={MAX_PERM_TABLE_N}. "
                "Use permute_round (table-free for large n) or run "
                "without symmetry reduction."
            )
        cached = self._perm_maps.get(perm)
        if cached is None:
            n = self.n
            cached = [0] * (1 << n)
            for mask in range(1 << n):
                image = 0
                rest = mask
                while rest:
                    low = rest & -rest
                    image |= 1 << perm[low.bit_length() - 1]
                    rest ^= low
                cached[mask] = image
            self._perm_maps[perm] = cached
        return cached

    def permute_round(self, rint: int, perm: tuple[int, ...]) -> int:
        """Image of a packed round under process renaming ``perm``.

        Process ``i``'s suspicion set moves to slot ``perm[i]`` with every
        member ``j`` renamed to ``perm[j]``.  Small ``n`` goes through the
        interned :meth:`perm_mask_map` lookup table; past
        ``MAX_PERM_TABLE_N`` rows are permuted directly (split, rename
        each mask bit-by-bit, repack) so no ``2^n`` table is ever built.
        """
        n = self.n
        if n > MAX_PERM_TABLE_N:
            rows = self.round_masks(rint)
            out = [0] * n
            for pid in range(n):
                mask = rows[pid]
                image = 0
                while mask:
                    low = mask & -mask
                    image |= 1 << perm[low.bit_length() - 1]
                    mask ^= low
                out[perm[pid]] = image
            return self.pack_masks(out)
        mask_map = self.perm_mask_map(perm)
        full = self.full
        image = 0
        for pid in range(n):
            mask = (rint >> (pid * n)) & full
            image |= mask_map[mask] << (perm[pid] * n)
        return image


@lru_cache(maxsize=None)
def domain(n: int) -> BitsetDomain:
    """The shared :class:`BitsetDomain` for ``n`` processes."""
    return BitsetDomain(n)
