"""Shared utilities for the RRFD reproduction.

This package holds small, dependency-free helpers used across the core
kernel, the substrates and the analysis tools: seeded random number
handling, set/combinatorics helpers and structured trace logging.
"""

from repro.util.rng import make_rng, spawn_rngs
from repro.util.sets import (
    all_subsets,
    all_subset_families,
    frozen,
    powerset_size,
    random_subset,
    random_subset_of_size,
)

__all__ = [
    "make_rng",
    "spawn_rngs",
    "all_subsets",
    "all_subset_families",
    "frozen",
    "powerset_size",
    "random_subset",
    "random_subset_of_size",
]
