"""Small statistics helpers for the experiment harness.

The benchmarks report empirical rates (eq. (4) satisfaction, detector
quality, commit rates).  A rate from a few thousand samples deserves an
interval, not just a point — these helpers provide the Wilson score
interval (well-behaved at the 0%/100% edges the experiments often sit on)
and a tiny summary container the report tables render.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Rate", "wilson_interval", "estimate_rate"]


def wilson_interval(
    successes: int, trials: int, *, z: float = 1.96
) -> tuple[float, float]:
    """The Wilson score interval for a binomial proportion.

    Returns ``(low, high)``; ``z = 1.96`` gives ~95% coverage.  Unlike the
    normal approximation it never leaves ``[0, 1]`` and stays sane when the
    observed rate is exactly 0 or 1 — the common case in these experiments
    (predicates that *always* or *never* hold).
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"need 0 ≤ successes ≤ trials, got {successes}/{trials}")
    p = successes / trials
    denom = 1 + z**2 / trials
    centre = (p + z**2 / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p * (1 - p) / trials + z**2 / (4 * trials**2))
        / denom
    )
    low = 0.0 if successes == 0 else max(0.0, centre - margin)
    high = 1.0 if successes == trials else min(1.0, centre + margin)
    return (low, high)


@dataclass(frozen=True)
class Rate:
    """An empirical proportion with its Wilson interval."""

    successes: int
    trials: int
    low: float
    high: float

    @property
    def point(self) -> float:
        return self.successes / self.trials

    def __str__(self) -> str:
        return (
            f"{100 * self.point:.1f}% "
            f"[{100 * self.low:.1f}, {100 * self.high:.1f}]"
        )


def estimate_rate(successes: int, trials: int, *, z: float = 1.96) -> Rate:
    """Bundle a proportion with its interval for the report tables."""
    low, high = wilson_interval(successes, trials, z=z)
    return Rate(successes=successes, trials=trials, low=low, high=high)
