"""Set and combinatorics helpers used by predicates and exhaustive checkers.

The RRFD model is defined entirely in terms of per-round families of
"suspected" sets ``D(i, r) ⊆ S``.  Exhaustive submodel checking and
lower-bound searches enumerate such families for small ``n``; the helpers
here keep that enumeration code readable.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterable, Iterator

__all__ = [
    "frozen",
    "all_subsets",
    "all_subset_families",
    "powerset_size",
    "random_subset",
    "random_subset_of_size",
]


def frozen(items: Iterable[int]) -> frozenset[int]:
    """Return ``items`` as a frozenset (tiny alias that keeps call sites terse)."""
    return frozenset(items)


def all_subsets(
    universe: Iterable[int], *, min_size: int = 0, max_size: int | None = None
) -> Iterator[frozenset[int]]:
    """Yield every subset of ``universe`` with size in ``[min_size, max_size]``.

    Subsets are yielded in order of increasing size, which lets callers that
    search for small witnesses terminate early.
    """
    elems = sorted(set(universe))
    if max_size is None:
        max_size = len(elems)
    for size in range(min_size, max_size + 1):
        for combo in itertools.combinations(elems, size):
            yield frozenset(combo)


def all_subset_families(
    n: int, *, max_size: int | None = None
) -> Iterator[tuple[frozenset[int], ...]]:
    """Yield every family ``(D_0, ..., D_{n-1})`` of subsets of ``range(n)``.

    This is the raw search space for one RRFD round with ``n`` processes:
    ``D_i`` is the set process ``i`` suspects.  ``max_size`` bounds each
    ``D_i`` (useful when a predicate like ``|D(i,r)| ≤ f`` prunes the space).

    The space has ``(2^n)^n`` points unbounded, so callers must keep ``n``
    tiny (``n ≤ 4``) or pass ``max_size``.
    """
    subsets = list(all_subsets(range(n), max_size=max_size))
    yield from itertools.product(subsets, repeat=n)


def powerset_size(n: int, max_size: int | None = None) -> int:
    """Number of subsets of an ``n``-element set with size ≤ ``max_size``."""
    if max_size is None or max_size >= n:
        return 2**n
    return sum(_binomial(n, k) for k in range(max_size + 1))


def _binomial(n: int, k: int) -> int:
    if k < 0 or k > n:
        return 0
    result = 1
    for i in range(min(k, n - k)):
        result = result * (n - i) // (i + 1)
    return result


def random_subset(
    universe: Iterable[int],
    rng: random.Random,
    *,
    exclude: Iterable[int] = (),
    max_size: int | None = None,
) -> frozenset[int]:
    """Sample a uniformly random subset of ``universe`` minus ``exclude``.

    When ``max_size`` is given, a size is drawn uniformly from
    ``0..max_size`` first and then a subset of that size — this biases toward
    small sets, which matches how fault patterns are sampled in experiments
    (few suspicions are the common case).
    """
    pool = sorted(set(universe) - set(exclude))
    if max_size is None:
        return frozenset(e for e in pool if rng.random() < 0.5)
    size = rng.randint(0, min(max_size, len(pool)))
    return frozenset(rng.sample(pool, size))


def random_subset_of_size(
    universe: Iterable[int], size: int, rng: random.Random
) -> frozenset[int]:
    """Sample a uniformly random ``size``-element subset of ``universe``."""
    pool = sorted(set(universe))
    if size > len(pool):
        raise ValueError(f"cannot sample {size} elements from {len(pool)}")
    return frozenset(rng.sample(pool, size))
