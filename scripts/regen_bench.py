#!/usr/bin/env python
"""Regenerate (or verify) the committed bench artifacts.

The repository commits canonical ``rrfd-bench-v1`` documents for the two
experiments the bitset kernel is accepted against:

* ``benchmarks/artifacts/BENCH_E22.json`` — exploration-engine grid
  (replay vs set-based incremental vs packed ``+bitset`` configs);
* ``benchmarks/artifacts/BENCH_E14.json`` / ``BENCH_E14c.json`` — kernel
  scaling, including the packed-round grid up to n=2048;
* ``benchmarks/artifacts/BENCH_E24.json`` — Heard-Of certification grid
  (packed suspicion kernels vs the bridged set oracle);
* ``benchmarks/artifacts/BENCH_E25.json`` — scale-out certification grid
  (static frontier split vs work-stealing scheduler vs disk-backed BFS,
  including the kset n=5 headline cells);
* ``benchmarks/artifacts/BENCH_E26.json`` — communication-closure
  certification grid (compiled async protocols recorded under fault
  plans, certified and projected — all counts seed-exact).

``python scripts/regen_bench.py`` re-runs the experiments and rewrites
the artifacts (do this on the reference machine when cell semantics
change).  ``python scripts/regen_bench.py --check`` re-runs them and
verifies that the *deterministic* payload of each committed artifact
reproduces exactly — cell axes, parameters, and every count-valued
result.  Wall-clock fields (``elapsed_ms`` values, the ``timing`` block)
are machine-dependent and excluded from the comparison; everything else
must match bit for bit, which is what CI's reproducibility step asserts.
"""

from __future__ import annotations

import argparse
import copy
import json
import sys
from pathlib import Path
from typing import Any

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from repro.harness.artifacts import (  # noqa: E402
    canonical_payload,
    experiment_to_doc,
    load_doc,
)
from repro.harness.registry import load_experiments  # noqa: E402
from repro.harness.runner import run_experiment  # noqa: E402

ARTIFACT_DIR = REPO_ROOT / "benchmarks" / "artifacts"

#: Experiments with committed artifacts (BENCH_<id>.json each).
EXPERIMENT_IDS = ("E22", "E14", "E14c", "E24", "E25", "E26")

#: Per-cell value fields that vary run to run and machine to machine.
#: ``shared_hits`` is environmental (zero when /dev/shm is unavailable and
#: the worker pool falls back to per-worker memos).
VOLATILE_VALUE_KEYS = frozenset({"elapsed_ms", "shared_hits"})


def stable_payload(doc: dict[str, Any]) -> dict[str, Any]:
    """The machine-independent projection of a bench document.

    Starts from :func:`canonical_payload` (which already drops the
    ``timing`` block) and additionally removes wall-clock fields from
    each cell's value, leaving only deterministic counts.
    """
    payload = copy.deepcopy(canonical_payload(doc))
    for cell in payload["results"]["cells"]:
        value = cell.get("value")
        if isinstance(value, dict):
            for key in VOLATILE_VALUE_KEYS:
                value.pop(key, None)
    return payload


def _selected(ids: list[str]) -> tuple[str, ...]:
    if not ids:
        return EXPERIMENT_IDS
    unknown = [i for i in ids if i not in EXPERIMENT_IDS]
    if unknown:
        raise SystemExit(
            f"no committed artifact for {unknown}; known: {EXPERIMENT_IDS}"
        )
    return tuple(ids)


def regenerate(ids: list[str]) -> list[Path]:
    registry = load_experiments()
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    written = []
    for exp_id in _selected(ids):
        doc = experiment_to_doc(run_experiment(registry[exp_id]))
        path = ARTIFACT_DIR / f"BENCH_{exp_id}.json"
        path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
        print(f"wrote {path.relative_to(REPO_ROOT)}")
        written.append(path)
    return written


def check(ids: list[str]) -> int:
    registry = load_experiments()
    failures = 0
    for exp_id in _selected(ids):
        path = ARTIFACT_DIR / f"BENCH_{exp_id}.json"
        if not path.is_file():
            print(f"MISSING {path.relative_to(REPO_ROOT)} — run "
                  f"scripts/regen_bench.py to create it")
            failures += 1
            continue
        committed = stable_payload(load_doc(path))
        fresh = stable_payload(experiment_to_doc(run_experiment(registry[exp_id])))
        if committed == fresh:
            cells = len(committed["results"]["cells"])
            print(f"{path.name}: deterministic payload reproduces "
                  f"({cells} cells)")
        else:
            failures += 1
            print(f"{path.name}: DRIFT — committed artifact does not "
                  f"reproduce; diff of stable payloads:")
            a = json.dumps(committed, indent=1, sort_keys=True).splitlines()
            b = json.dumps(fresh, indent=1, sort_keys=True).splitlines()
            import difflib

            for line in difflib.unified_diff(
                a, b, "committed", "fresh", lineterm="", n=2
            ):
                print(f"  {line}")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="verify the committed artifacts reproduce instead of rewriting",
    )
    parser.add_argument(
        "ids", nargs="*",
        help="restrict to these experiment ids (default: all committed)",
    )
    args = parser.parse_args()
    return check(args.ids) if args.check else (regenerate(args.ids) and 0)


if __name__ == "__main__":
    raise SystemExit(main())
