#!/usr/bin/env python3
"""Quickstart: the RRFD model in five minutes.

Runs Theorem 3.1's one-round k-set agreement under the k-set detector, then
shows what makes the framework tick: the *model is a predicate*, and the
same algorithm gets stronger or weaker guarantees purely by swapping the
predicate the adversary must respect.

Usage::

    python examples/quickstart.py
"""

from repro import (
    AsyncMessagePassing,
    KSetDetector,
    RoundByRoundFaultDetector,
    SemiSyncEquality,
)
from repro.protocols.kset import kset_protocol
from repro.protocols.properties import check_kset_agreement, check_validity


def main() -> None:
    n, k = 8, 3
    inputs = [f"value-{i}" for i in range(n)]

    print(f"=== k-set agreement, n={n}, k={k} (Theorem 3.1) ===")
    rrfd = RoundByRoundFaultDetector(KSetDetector(n, k), seed=42)
    print(f"model: {rrfd.describe()}")

    trace = rrfd.run(kset_protocol(), inputs=inputs, max_rounds=1)
    check_kset_agreement(trace, k)
    check_validity(trace)

    print(f"round 1 suspicions: {[sorted(s) for s in trace.d_history[0]]}")
    print(f"decisions:          {trace.decisions}")
    print(f"distinct values:    {len(trace.decided_values)} (bound: {k})")

    print()
    print("=== same algorithm, k = 1 detector: consensus in one round ===")
    rrfd = RoundByRoundFaultDetector(SemiSyncEquality(n), seed=7)
    trace = rrfd.run(kset_protocol(), inputs=inputs, max_rounds=1)
    print(f"decisions: {trace.decisions}")
    assert len(trace.decided_values) == 1

    print()
    print("=== same algorithm, plain async detector: agreement can fail ===")
    # AsyncMessagePassing bounds |D(i,r)| but not the detectors'
    # *disagreement* — so the one-round algorithm may exceed any k < n.
    worst = 0
    for seed in range(200):
        rrfd = RoundByRoundFaultDetector(AsyncMessagePassing(n, n - 1), seed=seed)
        trace = rrfd.run(kset_protocol(), inputs=inputs, max_rounds=1)
        worst = max(worst, len(trace.decided_values))
    print(f"worst distinct values over 200 runs: {worst} (no useful bound)")
    print()
    print("The model predicate — not the algorithm — is where agreement lives.")


if __name__ == "__main__":
    main()
