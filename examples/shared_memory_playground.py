#!/usr/bin/env python3
"""Items 4–5 scenario: shared memory, three ways.

1. the *register* level: the paper's literal adopt-commit protocol on SWMR
   registers under adversarial interleavings (including the lonely-runner
   schedule where one process must commit);
2. the *snapshot* level: the wait-free atomic-snapshot construction and a
   linearizability spot-check;
3. the *RRFD* level: item 4's write-then-read-until-fresh rounds, deriving
   the suspicion sets and verifying the shared-memory predicates
   (eq. (3) + (4)) hold by construction;
4. the *network* level: the ABD majority emulation that gives you those
   registers over async message passing when 2f < n.

Usage::

    python examples/shared_memory_playground.py
"""

import random

from repro.core.algorithm import FullInformationProcess, make_protocol
from repro.substrates.abd import ABDNode
from repro.substrates.events import EventSimulator
from repro.substrates.messaging.network import AsyncNetwork, UniformDelays
from repro.substrates.sharedmem import (
    AtomicSnapshotFromRegisters,
    RandomScheduler,
    ScriptedScheduler,
    SharedMemory,
    SharedMemorySystem,
    run_swmr_rounds,
)
from repro.substrates.sharedmem.adopt_commit import run_adopt_commit


def adopt_commit_demo() -> None:
    print("=== 1. adopt-commit on SWMR registers (Section 4.2) ===")
    result = run_adopt_commit(["a", "b", "a"], seed=5)
    for pid, out in enumerate(result.outputs):
        print(f"  p{pid} proposed {['a','b','a'][pid]!r} → {out}")
    print("  lonely-runner schedule (p0 finishes before anyone starts):")
    result = run_adopt_commit(["a", "b"], scheduler=ScriptedScheduler([0] * 10 + [1] * 10))
    print(f"  p0 → {result.outputs[0]}   p1 → {result.outputs[1]}")


def snapshot_demo() -> None:
    print("\n=== 2. wait-free atomic snapshot from registers (item 5) ===")
    scans = []

    def worker(pid, n):
        snap = AtomicSnapshotFromRegisters(pid, n)
        for u in range(2):
            yield from snap.update((pid, u))
            view = yield from snap.scan()
            scans.append((pid, view))
        return None

    memory = SharedMemory(3, audit_arrays=("snap",))
    SharedMemorySystem(
        memory, [worker] * 3, RandomScheduler(random.Random(4))
    ).run()
    for pid, view in scans[:6]:
        print(f"  p{pid} scanned {view}")
    print(f"  ({memory.steps_applied} atomic register operations total)")


def rrfd_rounds_demo() -> None:
    print("\n=== 3. item 4's RRFD rounds over shared memory ===")
    res = run_swmr_rounds(
        make_protocol(FullInformationProcess), list(range(4)), f=1,
        max_rounds=3, seed=9, stop_on_decision=False,
    )
    for r in range(1, 4):
        rows = res.d_rows(r)
        printable = {f"p{pid}": sorted(s) for pid, s in rows.items()}
        print(f"  round {r} suspicions: {printable}")
    print(f"  eq.(3) |D| ≤ f: {res.eq3_holds()};  eq.(4) someone-heard-by-all: {res.eq4_holds()}")


def abd_demo() -> None:
    print("\n=== 4. ABD: those registers over async messages (2f < n) ===")
    n = 5
    sim = EventSimulator()
    nodes = [ABDNode(pid, n) for pid in range(n)]
    net = AsyncNetwork(nodes, sim, delays=UniformDelays(random.Random(8)))
    net.crash(3, 0.0)
    net.crash(4, 0.0)  # two crashes: 2f < n still holds
    log = {}
    nodes[0].write(
        "hello-quorums",
        lambda _: nodes[1].read(0, lambda v: log.setdefault("read", v)),
    )
    net.run()
    print(f"  p1 read p0's register through majorities: {log['read']!r}")
    print(f"  messages sent: {net.stats.messages_sent}, "
          f"delivered: {net.stats.messages_delivered} "
          f"(2 crashed replicas never answered)")


def main() -> None:
    adopt_commit_demo()
    snapshot_demo()
    rrfd_rounds_demo()
    abd_demo()


if __name__ == "__main__":
    main()
