#!/usr/bin/env python3
"""Section 4 scenario: why k-set agreement needs ⌊f/k⌋ + 1 synchronous rounds.

Walks the paper's whole argument, executably:

1. run the asynchronous-snapshot → synchronous-crash simulation
   (Theorem 4.3) and show the simulated execution is a legal crash
   execution with ≤ f faults;
2. show FloodMin (the matching ⌊f/k⌋+1 upper bound) cannot decide within
   the ⌊f/k⌋ rounds the simulation provides — if any ⌊f/k⌋-round algorithm
   existed, it would decide here and contradict asynchronous impossibility;
3. certify the k = 1 case by brute force (no decision map exists at the
   bound; one exists a round later).

Usage::

    python examples/sync_lower_bound.py
"""

from repro.analysis.enumeration import enumerate_executions
from repro.analysis.solvability import consensus_solvable
from repro.core.algorithm import FullInformationProcess, make_protocol
from repro.protocols.floodset import floodmin_protocol, rounds_needed
from repro.simulations.async_to_sync_crash import simulate_crash_rounds


def main() -> None:
    n, f, k = 6, 4, 2
    print(f"=== Theorem 4.3 simulation: n={n}, f={f}, k={k} ===")
    res = simulate_crash_rounds(
        make_protocol(FullInformationProcess), list(range(n)), f, k, seed=3
    )
    print(f"simulated sync rounds: {res.sync_rounds} (= ⌊f/k⌋)")
    print(f"async rounds spent:    {res.async_rounds_used} (3 per sync round)")
    print(f"crash predicate holds: {res.crash_predicate_holds()}")
    print(f"simulated faults:      {res.cumulative_simulated_faults()} ≤ f={f}")

    print()
    print("=== Corollary 4.2: the window is one round too short ===")
    deadline = rounds_needed(f, k)
    print(f"FloodMin's deadline: {deadline} rounds; the simulation provides "
          f"{f // k}.")
    res = simulate_crash_rounds(
        floodmin_protocol(f, k), list(range(n)), f, k, seed=3
    )
    undecided = sum(1 for d in res.decisions if d is None)
    print(f"FloodMin inside the simulation: {undecided}/{n} processes "
          "undecided — as the bound demands.")

    print()
    print("=== brute-force certificate (k = 1, the Fischer–Lynch case) ===")
    for rounds in (1, 2):
        executions = enumerate_executions(3, 1, rounds, input_domain=[0, 1])
        verdict = consensus_solvable(executions)
        print(f"n=3, f=1, r={rounds}: {verdict}")
    print()
    print("Unsolvable at r = f, solvable at r = f + 1: the bound is exact,")
    print("and the paper gets it by *reduction* — no topology required.")


if __name__ == "__main__":
    main()
