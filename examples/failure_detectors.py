#!/usr/bin/env python3
"""Item 6 scenario: classic failure detectors, the RRFD way — and a real one.

Three views of ◇S on one screen:

1. the *predicate* view: ◇S as ``|⋃⋃D| < n`` — one never-suspected process
   — and the paper's observation that this is the send-omission predicate
   with f = n−1 minus the self-suspicion clause (checked exhaustively);
2. the *algorithmic* view: rotating-coordinator consensus that decides in
   n rounds under that predicate, wait-free;
3. the *system* view: an actual heartbeat detector over a partially
   synchronous network (chaotic before GST, timely after), whose output
   stabilises into exactly that predicate.

Usage::

    python examples/failure_detectors.py
"""

from repro import EventuallyStrong, RoundByRoundFaultDetector, SendOmissionSync
from repro.core.submodel import implies_exhaustive
from repro.simulations.eventually_strong import rotating_coordinator_protocol
from repro.substrates.messaging.heartbeat import HeartbeatSystem


def predicate_view() -> None:
    print("=== 1. ◇S as a predicate (item 6) ===")
    print(f"model: {EventuallyStrong(3).describe()}")
    forward = implies_exhaustive(SendOmissionSync(3, 2), EventuallyStrong(3), rounds=2)
    backward = implies_exhaustive(EventuallyStrong(3), SendOmissionSync(3, 2), rounds=1)
    print(f"omission(n−1) ⇒ ◇S : {forward.holds}   "
          f"(checked over {forward.histories_checked} histories)")
    print(f"◇S ⇒ omission(n−1) : {backward.holds}   "
          "(the self-suspicion clause separates them)")


def algorithm_view() -> None:
    print("\n=== 2. consensus under ◇S: rotating coordinator, n rounds ===")
    n = 6
    rrfd = RoundByRoundFaultDetector(EventuallyStrong(n), seed=13)
    trace = rrfd.run(
        rotating_coordinator_protocol(),
        inputs=[f"v{i}" for i in range(n)],
        max_rounds=n,
    )
    never_suspected = set(range(n))
    for d_round in trace.d_history:
        for row in d_round:
            never_suspected -= row
    print(f"never-suspected process(es): {sorted(never_suspected)}")
    print(f"decisions: {trace.decisions}")


def system_view() -> None:
    print("\n=== 3. a real detector: heartbeats over partial synchrony ===")
    system = HeartbeatSystem.build(5, seed=7, gst=40.0, delta=0.5)
    system.network.crash(2, 60.0)
    system.run(until=400.0)
    print("final suspicion sets (p2 crashed at t=60, GST=40):")
    for pid in range(5):
        if pid in system.network.correct:
            print(f"  p{pid} suspects {sorted(system.suspected_by(pid))}")
    false_events = sum(
        1
        for node in system.nodes
        for time, suspected in node.suspicion_log
        if time < 40.0 and suspected
    )
    print(f"pre-GST false-suspicion events (all healed): {false_events}")
    print(f"completeness: {system.completeness_holds()}   "
          f"accuracy: {system.accuracy_holds()}   "
          f"◇S predicate: {system.eventually_strong_holds()}")


def main() -> None:
    predicate_view()
    algorithm_view()
    system_view()


if __name__ == "__main__":
    main()
