#!/usr/bin/env python3
"""Section 2 scenario: one algorithm, every model — the RRFD zoo.

Runs the full-information protocol under every predicate in the paper's
catalog, prints each model's suspicion behaviour, and renders the submodel
lattice — the unification the paper is about, on one screen.

Usage::

    python examples/model_zoo.py
"""

from repro import (
    AsyncMessagePassing,
    AtomicSnapshot,
    CrashSync,
    EventuallyStrong,
    FullInformationProcess,
    KSetDetector,
    MixedResilience,
    RoundByRoundFaultDetector,
    SemiSyncEquality,
    SendOmissionSync,
    SharedMemoryAntisymmetric,
    SharedMemorySWMR,
    make_protocol,
)
from repro.analysis.lattice import compute_lattice


def main() -> None:
    n, f, rounds = 5, 2, 3
    catalog = [
        ("synchronous, send-omission (item 1)", SendOmissionSync(n, f)),
        ("synchronous, crash (item 2)", CrashSync(n, f)),
        ("asynchronous message passing (item 3)", AsyncMessagePassing(n, f)),
        ("mixed-resilience model B (item 3)", MixedResilience(n + 2, f + 1, f)),
        ("SWMR shared memory (item 4)", SharedMemorySWMR(n, f)),
        ("antisymmetric shared memory (item 4')", SharedMemoryAntisymmetric(n, f)),
        ("atomic snapshot (item 5)", AtomicSnapshot(n, f)),
        ("◇S failure detector (item 6)", EventuallyStrong(n)),
        ("k-set detector, k=2 (Thm 3.1)", KSetDetector(n, 2)),
        ("semi-synchronous equality (Sec 5)", SemiSyncEquality(n)),
    ]

    print(f"=== one full-information run per model (n={n}, {rounds} rounds) ===")
    for label, predicate in catalog:
        rrfd = RoundByRoundFaultDetector(predicate, seed=11)
        trace = rrfd.run(
            make_protocol(FullInformationProcess),
            inputs=list(range(predicate.n)),
            max_rounds=rounds,
        )
        flat = [
            "".join("x" if j in row else "." for j in range(predicate.n))
            for d_round in trace.d_history
            for row in d_round
        ]
        per_round = [
            " ".join(flat[r * predicate.n : (r + 1) * predicate.n])
            for r in range(rounds)
        ]
        print(f"\n{label}")
        print(f"  guarantee: {predicate.describe()}")
        for r, picture in enumerate(per_round, start=1):
            print(f"  round {r}: {picture}   (column j of block i: i suspects j)")

    print()
    print("=== the submodel lattice (n=3 instantiation, exhaustive) ===")
    report = compute_lattice(3, f=1, k=2, t=1, rounds=2)
    print(report.format())
    print()
    print("Y at (row, col): every row-model execution is also a col-model")
    print("execution — row is a submodel of col, as Section 2 orders them.")


if __name__ == "__main__":
    main()
