#!/usr/bin/env python3
"""Section 5 scenario: racing consensus in the semi-synchronous model.

Dolev–Dwork–Stockmeyer's model — asynchronous processes, atomic
receive/broadcast steps, messages delivered before any further step — had a
2n-step consensus algorithm and an open problem: is O(1) possible?  The
paper's answer is 2 steps.  This example races the two algorithms under the
same adversarial schedules, with crashes, and prints the step counts.

Usage::

    python examples/semisync_race.py [n]
"""

import random
import sys

from repro.protocols.semisync_consensus import (
    SequentialBaselineProcess,
    TwoStepConsensusProcess,
)
from repro.substrates.semisync import RandomStepSchedule, SemiSyncSystem


def race(n: int, seed: int, crash_fraction: float = 0.3) -> tuple[int, int, int]:
    rng = random.Random(seed)
    inputs = [rng.randint(0, 99) for _ in range(n)]
    crashers = rng.sample(range(n), int(crash_fraction * n))
    crash_after = {pid: rng.randint(0, 3) for pid in crashers}

    def run(cls):
        procs = [cls(pid, n, inputs[pid]) for pid in range(n)]
        system = SemiSyncSystem(
            procs, RandomStepSchedule(random.Random(seed)), crash_after=dict(crash_after)
        )
        result = system.run()
        values = {p.decision for p in procs if p.decided}
        assert len(values) <= 1, "agreement violated?!"
        return result.max_steps_to_decide()

    return run(TwoStepConsensusProcess), run(SequentialBaselineProcess), len(crashers)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    print(f"Semi-synchronous consensus race, n={n} "
          "(steps to decide, worst process)")
    print(f"{'seed':>6}  {'crashes':>7}  {'2-step':>7}  {'2n baseline':>11}")
    for seed in range(10):
        fast, slow, crashed = race(n, seed)
        print(f"{seed:>6}  {crashed:>7}  {fast:>7}  {slow:>11}")
    print()
    print("The 2-step algorithm is the paper's resolution of DDS's open")
    print("problem: the first receive/send of a round acts as an atomic")
    print("read-modify-write, making every process's round-1 suspicions")
    print("identical (equation (5)) — and one k=1 detector round decides.")


if __name__ == "__main__":
    main()
