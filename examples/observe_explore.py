#!/usr/bin/env python3
"""Observability walkthrough: tracing and metering an exhaustive exploration.

The :mod:`repro.obs` layer makes the runtime's own behaviour inspectable at
the paper's granularity — rounds, forks, memo hits, symmetry skips — without
changing any result.  This example:

1. runs ``explore("kset")`` with a :class:`~repro.obs.Tracer` and a
   :class:`~repro.obs.Metrics` registry installed;
2. shows that the trace's *deterministic payload* is a pure function of the
   work: re-running the same pooled exploration reproduces it bit for bit
   (worker chunks trace locally; the parent splices them back in payload
   order), and the ``check.*`` metric totals are invariant even across
   *different* worker counts, where the chunk decomposition — and hence the
   span structure — legitimately differs;
3. prints the merged metrics and a small slice of the event log;
4. writes the trace as an ``rrfd-events-v1`` JSONL file and re-validates it.

Usage::

    python examples/observe_explore.py
"""

import os
import tempfile

from repro import obs
from repro.check import explore


def main() -> None:
    print("=== 1. explore('kset') with observability on ===")
    runs = {}
    for label, workers in (("serial", 1), ("pool-a", 4), ("pool-b", 4)):
        tracer = obs.Tracer()
        metrics = obs.Metrics()
        with obs.tracing(tracer), obs.collecting(metrics):
            result = explore("kset", workers=workers)
        print(
            f"{label} (workers={workers}): {result.executions} executions, "
            f"{result.histories} histories, used {result.workers} worker(s), "
            f"{len(tracer)} trace records"
        )
        runs[label] = (result, metrics, tracer)

    print("\n=== 2. the deterministic payload is a function of the work ===")
    payloads = {
        label: tuple(record.canonical() for record in tracer.records)
        for label, (_, _, tracer) in runs.items()
    }
    assert payloads["pool-a"] == payloads["pool-b"], "pooled runs diverged!"
    print(f"two pooled runs: identical payloads ({len(payloads['pool-a'])} "
          "records — absorbed from the workers in chunk order)")
    # to_doc()["values"] is the deterministic half of the registry — the
    # env=True instruments (wall-clock, worker gauge) live under "env".
    totals = {
        label: {
            name: value
            for name, value in metrics.to_doc()["values"].items()
            if name.startswith("check.")
        }
        for label, (_, metrics, _) in runs.items()
    }
    assert totals["serial"] == totals["pool-a"], "worker count leaked!"
    print(f"serial vs pooled check.* totals: identical ({totals['serial']})")

    print("\n=== 3. merged metrics (parent absorbed the worker chunks) ===")
    _, metrics, tracer = runs["pool-a"]
    print(obs.format_metrics(metrics))

    print("\n=== 4. a slice of the event log ===")
    for record in tracer.records[:8]:
        indent = "  " * record.depth
        print(f"  {record.seq:4d} {indent}{record.kind:<10s} {record.name} "
              f"{record.attrs}")

    print("\n=== 5. rrfd-events-v1 round trip ===")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "events.jsonl")
        tracer.save(path)
        records = obs.load_events(path)  # raises if the schema is violated
        print(f"wrote + validated {path}: {len(records)} records")


if __name__ == "__main__":
    main()
